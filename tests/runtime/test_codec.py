"""Property-based round-trip tests for the live wire codec.

Every message dataclass registered in :mod:`repro.protocols.messages`
must encode/decode losslessly (field-for-field, container types
included), and its ``size_bytes()`` — the modeled compact-binary size the
overhead benches count — must be *consistent with the encoded frame*:
unchanged by a round trip, and the frame's length prefix must match the
bytes actually produced.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import Address, NodeKind
from repro.protocols import messages as m
from repro.protocols.cops import CopsVersion
from repro.runtime import codec
from repro.storage.version import Version

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
micros = st.integers(min_value=0, max_value=2**53)
small_int = st.integers(min_value=0, max_value=2**20)
keys = st.text(min_size=1, max_size=12)
vectors = st.lists(micros, min_size=1, max_size=5)
tuple_vectors = vectors.map(tuple)

addresses = st.builds(
    Address,
    dc=st.integers(0, 4),
    partition=st.integers(0, 7),
    kind=st.sampled_from(list(NodeKind)),
    index=st.integers(0, 3),
)

scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-2**40, max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=8)
)
#: Values clients may store: scalars nested in lists/tuples (the workload
#: generators write ``(client_name, sequence)`` tuples).
values = st.recursive(
    scalars,
    lambda children: (
        st.lists(children, max_size=3)
        | st.lists(children, max_size=3).map(tuple)
    ),
    max_leaves=6,
)

versions = st.builds(
    Version,
    key=keys,
    value=values,
    sr=st.integers(0, 4),
    ut=micros,
    dv=tuple_vectors,
    optimistic=st.booleans(),
)

dependencies = st.builds(
    m.Dependency, key=keys, ut=micros, sr=st.integers(0, 4)
)

cops_versions = st.builds(
    lambda key, value, sr, ut, deps, num_dcs, visible: CopsVersion(
        key=key, value=value, sr=sr, ut=ut, deps=deps, num_dcs=num_dcs,
        visible=visible,
    ),
    key=keys,
    value=values,
    sr=st.integers(0, 4),
    ut=micros,
    deps=st.lists(dependencies, max_size=4).map(tuple),
    num_dcs=st.integers(1, 5),
    visible=st.booleans(),
)

get_replies = st.builds(
    m.GetReply,
    key=keys,
    value=values,
    ut=micros,
    dv=tuple_vectors,
    sr=st.integers(0, 4),
    op_id=small_int,
)

#: One strategy per registered message type.  The completeness test below
#: fails if a new message dataclass lands without a strategy here.
STRATEGIES: dict[str, st.SearchStrategy] = {
    "GetReq": st.builds(m.GetReq, key=keys, rdv=vectors, client=addresses,
                        op_id=small_int, pessimistic=st.booleans()),
    "GetReply": get_replies,
    "PutReq": st.builds(m.PutReq, key=keys, value=values, dv=vectors,
                        client=addresses, op_id=small_int,
                        pessimistic=st.booleans()),
    "PutReply": st.builds(m.PutReply, ut=micros, op_id=small_int),
    "RoTxReq": st.builds(m.RoTxReq,
                         keys=st.lists(keys, max_size=4).map(tuple),
                         rdv=vectors, client=addresses, op_id=small_int,
                         pessimistic=st.booleans()),
    "RoTxReply": st.builds(m.RoTxReply,
                           versions=st.lists(get_replies, max_size=3),
                           op_id=small_int),
    "SessionClosed": st.builds(m.SessionClosed, op_id=small_int,
                               reason=st.text(max_size=20)),
    "Replicate": st.builds(m.Replicate,
                           version=st.one_of(versions, cops_versions)),
    "Heartbeat": st.builds(m.Heartbeat, ts=micros,
                           src_dc=st.integers(0, 4)),
    "SliceReq": st.builds(m.SliceReq,
                          keys=st.lists(keys, max_size=4).map(tuple),
                          tv=vectors, coordinator=addresses,
                          tx_id=small_int, pessimistic=st.booleans()),
    "SliceResp": st.builds(m.SliceResp,
                           versions=st.lists(get_replies, max_size=3),
                           tx_id=small_int, aborted=st.booleans()),
    "StabPush": st.builds(m.StabPush, vv=vectors,
                          partition=st.integers(0, 7)),
    "StabBroadcast": st.builds(m.StabBroadcast, gss=vectors),
    "UstGossip": st.builds(m.UstGossip, dst=micros,
                           src_dc=st.integers(0, 4)),
    "Dependency": dependencies,
    "CopsPutReq": st.builds(m.CopsPutReq, key=keys, value=values,
                            deps=st.lists(dependencies, max_size=4)
                            .map(tuple),
                            client=addresses, op_id=small_int),
    "DepCheck": st.builds(m.DepCheck, key=keys, ut=micros,
                          sr=st.integers(0, 4), requester=addresses,
                          check_id=small_int),
    "DepCheckResp": st.builds(m.DepCheckResp, check_id=small_int),
    "GcPush": st.builds(m.GcPush, vec=vectors,
                        partition=st.integers(0, 7)),
    "GcBroadcast": st.builds(m.GcBroadcast, gv=vectors),
    "ReplSyncReq": st.builds(m.ReplSyncReq, vv=vectors,
                             requester=addresses),
    "ReplicateBatch": st.builds(m.ReplicateBatch,
                                versions=st.lists(
                                    st.one_of(versions, cops_versions),
                                    max_size=3),
                                src_dc=st.integers(0, 4),
                                clock_ts=micros,
                                dst=micros),
    "ReplCatchup": st.builds(m.ReplCatchup,
                             versions=st.lists(
                                 st.one_of(versions, cops_versions),
                                 max_size=3),
                             src_dc=st.integers(0, 4),
                             last=st.booleans()),
    "AeDigest": st.builds(m.AeDigest, vv=vectors,
                          uts=st.lists(micros, max_size=5).map(tuple),
                          requester=addresses),
    "AeRepair": st.builds(m.AeRepair,
                          versions=st.lists(
                              st.one_of(versions, cops_versions),
                              max_size=3),
                          src_dc=st.integers(0, 4)),
    "ViewPropose": st.builds(m.ViewPropose, epoch=small_int,
                             members=st.lists(small_int, min_size=1,
                                              max_size=6).map(tuple),
                             vnodes=st.integers(1, 256),
                             reply_to=addresses),
    "ViewAck": st.builds(m.ViewAck, epoch=small_int,
                         phase=st.sampled_from(["prepare", "commit"]),
                         dc=st.integers(0, 4),
                         partition=st.integers(0, 7)),
    "MigrateStart": st.builds(m.MigrateStart, epoch=small_int,
                              reply_to=addresses),
    "MigrateChunk": st.builds(m.MigrateChunk, epoch=small_int,
                              src_dc=st.integers(0, 4),
                              src_partition=st.integers(0, 7),
                              seq=st.integers(-1, 2**20),
                              versions=st.lists(versions, max_size=3),
                              vv=st.lists(micros, max_size=5),
                              last=st.booleans()),
    "MigrateAck": st.builds(m.MigrateAck, epoch=small_int,
                            partition=st.integers(0, 7), seq=small_int),
    "MigrateDone": st.builds(m.MigrateDone, epoch=small_int,
                             dc=st.integers(0, 4),
                             partition=st.integers(0, 7),
                             keys_moved=small_int,
                             bytes_moved=small_int),
    "ViewCommit": st.builds(m.ViewCommit, epoch=small_int,
                            members=st.lists(small_int, min_size=1,
                                             max_size=6).map(tuple),
                            vnodes=st.integers(1, 256)),
    "ViewGossip": st.builds(m.ViewGossip, epoch=small_int,
                            members=st.lists(small_int, min_size=1,
                                             max_size=6).map(tuple),
                            vnodes=st.integers(1, 256)),
    "NotOwner": st.builds(m.NotOwner, op_id=small_int, key=keys,
                          epoch=small_int,
                          members=st.lists(small_int, min_size=1,
                                           max_size=6).map(tuple),
                          vnodes=st.integers(1, 256)),
}


def same(a, b) -> bool:
    """Deep structural equality that understands Version (no __eq__)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Version):
        fixed = ("key", "value", "sr", "ut", "dv", "optimistic")
        extra = ("deps", "visible") if isinstance(a, CopsVersion) else ()
        return all(same(getattr(a, f), getattr(b, f))
                   for f in fixed + extra)
    if dataclasses.is_dataclass(a):
        return all(
            same(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(same(x, y) for x, y in zip(a, b))
    return a == b


# ----------------------------------------------------------------------
# The properties
# ----------------------------------------------------------------------
def test_every_registered_message_type_has_a_strategy():
    assert set(STRATEGIES) == set(codec.MESSAGE_TYPES), (
        "a message dataclass was added/removed in protocols.messages; "
        "update STRATEGIES so the round-trip property covers it"
    )


@pytest.mark.parametrize("type_name", sorted(codec.MESSAGE_TYPES))
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_round_trip_is_lossless(type_name, data):
    msg = data.draw(STRATEGIES[type_name])
    decoded = codec.loads(codec.dumps(msg))
    assert same(msg, decoded), f"{type_name} round trip changed the message"


@pytest.mark.parametrize("type_name", sorted(codec.MESSAGE_TYPES))
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_size_bytes_consistent_with_encoding(type_name, data):
    """``size_bytes()`` (the modeled wire cost) must survive the codec:
    the decoded message reports exactly the original modeled size, and
    the frame's declared length matches the bytes produced."""
    msg = data.draw(STRATEGIES[type_name])
    frame = codec.encode_frame(msg)
    assert len(frame) == codec.encoded_size(msg)
    declared = int.from_bytes(frame[:4], "big")
    assert declared == len(frame) - 4
    decoded = codec.loads(frame[4:])
    if callable(getattr(msg, "size_bytes", None)):
        assert decoded.size_bytes() == msg.size_bytes()
    else:  # Dependency models its size as a per-entry class constant
        assert decoded.SIZE_BYTES == msg.SIZE_BYTES


def test_every_registered_message_type_has_a_compiled_codec():
    assert codec.compiled_message_types() == set(codec.MESSAGE_TYPES), (
        "a message dataclass exists without a compiled encoder/decoder; "
        "the compiler must cover the whole registry"
    )


@pytest.mark.parametrize("type_name", sorted(codec.MESSAGE_TYPES))
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_compiled_codec_is_byte_identical_to_reference(type_name, data):
    """The tentpole property: the compiled per-dataclass encoders must
    produce byte-for-byte the frames of the reference tree walk (so
    mixed deployments interoperate and the WAL format is unchanged), and
    both decoders must reconstruct equal objects from either's bytes."""
    msg = data.draw(STRATEGIES[type_name])
    compiled = codec.dumps(msg)
    reference = codec.dumps_reference(msg)
    assert compiled == reference, (
        f"{type_name}: compiled encoding diverged from the tree codec"
    )
    via_compiled = codec.loads(compiled)
    via_reference = codec.loads_reference(compiled)
    assert same(msg, via_compiled), f"{type_name}: compiled decode changed it"
    assert same(via_compiled, via_reference), (
        f"{type_name}: compiled and reference decoders disagree"
    )


def test_compiled_decoder_rejects_field_count_mismatch():
    bad = codec._pack(["@m", "PutReply", [1, 2, 3]])
    with pytest.raises(codec.CodecError):
        codec.loads(bad)


def test_encode_frame_memoizes_by_identity():
    """Sizing a message then sending it (or fanning it out) must
    serialize once: same object -> same frame object back."""
    msg = m.Heartbeat(ts=42, src_dc=1)
    first = codec.encode_frame(msg)
    assert codec.encoded_size(msg) == len(first)
    assert codec.encode_frame(msg) is first
    # A different (even equal) message misses the memo and re-encodes.
    other = m.Heartbeat(ts=42, src_dc=1)
    assert codec.encode_frame(other) == first
    assert codec.encode_frame(other) is not first


@settings(max_examples=30, deadline=None)
@given(data=st.data(),
       chunk=st.integers(min_value=1, max_value=17))
def test_frame_decoder_reassembles_arbitrary_chunking(data, chunk):
    msgs = [data.draw(STRATEGIES[name])
            for name in ("GetReq", "Heartbeat", "Replicate")]
    stream = b"".join(codec.encode_frame(msg) for msg in msgs)
    decoder = codec.FrameDecoder()
    out = []
    for start in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[start:start + chunk]))
    assert decoder.pending_bytes == 0
    assert len(out) == len(msgs)
    for original, decoded in zip(msgs, out):
        assert same(original, decoded)


@settings(max_examples=30, deadline=None)
@given(data=st.data(),
       batch_bytes=st.integers(min_value=32, max_value=4096))
def test_frame_decoder_reassembles_batched_writes(data, batch_bytes):
    """The transport coalesces queued frames into multi-frame writes
    (one ``write`` per batch, capped by bytes); the decoder must yield
    the same message sequence whether frames arrive singly or in the
    exact batches a sender would form."""
    msgs = [data.draw(STRATEGIES[name])
            for name in ("GetReq", "Replicate", "PutReply", "Heartbeat",
                         "GetReq", "RoTxReply")]
    frames = [codec.encode_frame(msg) for msg in msgs]
    # Group frames the way transport._sender does: greedily, starting a
    # new batch once the running size reaches the cap.
    batches: list[bytes] = []
    current: list[bytes] = []
    size = 0
    for frame in frames:
        if current and size >= batch_bytes:
            batches.append(b"".join(current))
            current, size = [], 0
        current.append(frame)
        size += len(frame)
    if current:
        batches.append(b"".join(current))
    decoder = codec.FrameDecoder()
    out = []
    for batch in batches:
        out.extend(decoder.feed(batch))
    assert decoder.pending_bytes == 0
    assert len(out) == len(msgs)
    for original, decoded in zip(msgs, out):
        assert same(original, decoded)


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_frame_decoder_chunking_equivalence(data):
    """Chunking-equivalence: *any* split of the same byte stream yields
    the identical message sequence and the identical ``consumed_bytes``
    as a single-shot feed — the contract the read-offset compaction in
    ``FrameDecoder.feed`` must not bend, whatever the write grouping or
    a torn tail."""
    msgs = [data.draw(STRATEGIES[name])
            for name in ("GetReq", "Heartbeat", "Replicate", "PutReply")]
    stream = b"".join(codec.encode_frame(msg) for msg in msgs)
    # Possibly tear the tail mid-frame, then cut what is left anywhere.
    stream = stream[:data.draw(st.integers(0, len(stream)))]
    cuts = sorted(data.draw(st.sets(st.integers(0, len(stream)),
                                    max_size=12)) | {0, len(stream)})
    reference = codec.FrameDecoder()
    expected = reference.feed(stream)
    decoder = codec.FrameDecoder()
    out = []
    for start, end in zip(cuts, cuts[1:]):
        out.extend(decoder.feed(stream[start:end]))
        assert decoder.consumed_bytes + decoder.pending_bytes == end
    assert len(out) == len(expected)
    for lhs, rhs in zip(expected, out):
        assert same(lhs, rhs)
    assert decoder.consumed_bytes == reference.consumed_bytes
    assert decoder.pending_bytes == reference.pending_bytes


@pytest.mark.parametrize("value", [
    ["@t", 1, 2],            # a plain list masquerading as the tuple tag
    ["@l"],                  # ...as the escape tag itself
    ["@x", "y"],             # ...as an unknown tag
    ["@m", "GetReq", []],    # ...as a message envelope
    [["@t", 0], "@a"],       # nested: only the head position is ambiguous
    ("@t", 1),               # tuples are tagged, contents positional: safe
])
def test_at_headed_client_values_round_trip_exactly(value):
    """Client-stored values may collide with the tag space; the codec
    must escape them, never reinterpret (or reject) them."""
    msg = m.PutReq(key="k", value=value, dv=[1, 2], client=Address(0, 0),
                   op_id=7)
    decoded = codec.loads(codec.dumps(msg))
    assert same(msg, decoded)
    assert type(decoded.value) is type(value)


def test_decoder_reports_the_clean_boundary_of_a_torn_stream():
    """An incomplete trailing frame is *not* corruption: the decoder
    yields everything whole and points at the clean boundary — exactly
    what WAL tail recovery truncates to."""
    msgs = [m.Heartbeat(ts=i, src_dc=0) for i in range(3)]
    stream = b"".join(codec.encode_frame(msg) for msg in msgs)
    for cut in range(len(stream) + 1):
        decoder = codec.FrameDecoder()
        out = decoder.feed(stream[:cut])
        # The boundary sits after the last whole frame that fits in cut.
        whole = 0
        offset = 0
        for msg in msgs:
            size = codec.encoded_size(msg)
            if offset + size <= cut:
                whole += 1
                offset += size
        assert len(out) == whole
        assert decoder.consumed_bytes == offset
        assert decoder.pending_bytes == cut - offset
        assert decoder.consumed_bytes + decoder.pending_bytes == cut


def test_decoder_corruption_leaves_boundary_before_the_bad_frame():
    """A complete frame that does not decode is corruption; the clean
    boundary must stop *before* it so callers can report the offset."""
    good = codec.encode_frame(m.Heartbeat(ts=1, src_dc=0))
    bad_payload = codec._pack(["@m", "NoSuchType", []])
    bad = len(bad_payload).to_bytes(4, "big") + bad_payload
    decoder = codec.FrameDecoder()
    with pytest.raises(codec.CodecError):
        decoder.feed(good + bad)
    assert decoder.consumed_bytes == len(good)


def test_unknown_type_and_corrupt_frames_are_rejected():
    class NotAMessage:
        pass

    with pytest.raises(codec.CodecError):
        codec.dumps(NotAMessage())
    with pytest.raises(codec.CodecError):  # unknown message tag on the wire
        codec.loads(codec._pack(["@m", "NoSuchType", []]))
    decoder = codec.FrameDecoder()
    with pytest.raises(codec.CodecError):
        list(decoder.feed((codec.MAX_FRAME_BYTES + 1).to_bytes(4, "big")))
