"""The asyncio TCP transport behind the live backend.

One process runs one :class:`LiveHub`: the shared event-loop state — the
monotonic epoch every endpoint's ``now`` is measured from, the address
book mapping :class:`repro.common.types.Address` to ``(host, port)``, the
outgoing connection cache and the transfer statistics.  Each protocol
core gets a :class:`LiveRuntime`, the per-endpoint
:class:`repro.protocols.core.ProtocolRuntime` adapter: its listener
decodes length-prefixed frames into ``core.on_message``, its ``send``
posts frames to the hub, and its timers are ``loop.call_later``
callbacks.

Everything runs on a single event loop (no locks): protocol handlers are
synchronous functions invoked from reader tasks and timer callbacks, just
as they are invoked from engine events in the simulation.

Differences from the simulated substrate, by design:

* modeled CPU service times are **not** charged (``submit`` runs the
  handler immediately) — real CPUs charge themselves;
* per-channel FIFO comes from TCP: all traffic from this process to one
  destination shares one ordered connection;
* crashes are injected for real (kill the process); *network* chaos is
  injectable in-process via per-channel :class:`LinkFault` hooks —
  delay and probabilistic drop per directed DC pair, mirroring the
  simulation's slow/lossy links so the same chaos scenarios run on both
  backends.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

from repro.common.config import TransportTuningConfig
from repro.common.errors import ReproError
from repro.common.types import Address, reshard_controller_address
from repro.cluster.topology import Topology
from repro.protocols.core import FOREGROUND, modeled_message_size
from repro.runtime import codec


@dataclass(frozen=True)
class ConnectRetryPolicy:
    """Exponential backoff with jitter for outgoing connections.

    Replaces the old fixed budget (40 tries x 0.25 s); the default
    ``max_elapsed_s`` preserves that 10-second cap while probing much
    faster at first (a peer that boots 100 ms later costs ~100 ms, not a
    quarter second) and backing off once the peer looks genuinely down.
    Jitter decorrelates the dial storms of many channels retrying at
    once after a peer restart.
    """

    initial_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    #: Each sleep is scaled by ``1 + uniform(-jitter, +jitter)``.
    jitter: float = 0.2
    #: Total time budget before the hub records a transport error.
    max_elapsed_s: float = 10.0

    def next_delay(self, delay_s: float) -> float:
        return min(delay_s * self.multiplier, self.max_delay_s)

    def jittered(self, delay_s: float, rng: random.Random) -> float:
        if self.jitter <= 0:
            return delay_s
        return delay_s * (1.0 + rng.uniform(-self.jitter, self.jitter))


class LinkFault:
    """Chaos parameters for one directed DC-pair channel (live backend).

    ``delay_s`` adds fixed latency to every frame; ``drop_rate`` drops
    frames probabilistically.  Delayed frames release in post order
    (strictly increasing release times per destination), so per-channel
    FIFO survives the detour through the event loop's timer heap.
    """

    __slots__ = ("delay_s", "drop_rate", "rng", "dropped", "delayed",
                 "dropped_by_type")

    def __init__(self, delay_s: float = 0.0, drop_rate: float = 0.0,
                 seed: int | None = None):
        if not 0.0 <= drop_rate <= 1.0:
            raise TransportError("drop_rate must be in [0, 1]")
        if delay_s < 0:
            raise TransportError("delay_s must be >= 0")
        self.delay_s = delay_s
        self.drop_rate = drop_rate
        self.rng = random.Random(seed)
        self.dropped = 0
        self.delayed = 0
        #: Message-type name -> drops, mirroring the simulated network's
        #: ``NetworkStats.dropped_by_type`` so chaos cells assert the
        #: fault hit the traffic it targeted on either backend.
        self.dropped_by_type: dict[str, int] = {}

#: Per-channel write coalescing cap: a sender gathers every frame queued
#: for its destination — everything posted during the event-loop ticks it
#: spent waiting or writing — into one ``writelines`` of at most this
#: many bytes.  The cap bounds both the transport's buffered backlog and
#: how long one destination can monopolize the loop; frames beyond it
#: simply start the next batch.  Framing on the wire is unchanged (concatenated
#: length-prefixed frames), so receivers need no batching awareness.
MAX_BATCH_BYTES = 256 * 1024

#: The live backend's time origin: 2026-01-01T00:00:00Z as Unix seconds.
#: ``now`` is measured from this *shared* wall-clock epoch — not from
#: process start — so independently started processes of one deployment
#: (``repro-serve --dc 0`` here, ``--dc 1`` there) produce comparable
#: timestamps; a per-process epoch would skew their clocks by the boot
#: gap, far beyond the modeled clock offsets.  Per-node strict
#: monotonicity is enforced by :class:`~repro.clocks.physical.
#: PhysicalClock` on top, so small OS clock slews stay harmless.
LIVE_EPOCH_UNIX_S = 1_767_225_600


class TransportError(ReproError):
    """Raised on address-book or connection misuse."""


def apply_socket_tuning(writer: asyncio.StreamWriter,
                        tuning: TransportTuningConfig) -> None:
    """Apply the configured socket knobs to one stream's socket.

    Best-effort: non-TCP transports (or platforms rejecting an option)
    keep their defaults — tuning is a performance lever, never a
    correctness requirement.
    """
    sock = writer.get_extra_info("socket")
    if sock is None:
        return
    try:
        # asyncio enables TCP_NODELAY on TCP streams by default; setting
        # it explicitly both covers loops that do not and lets
        # `tcp_nodelay=False` hand the coalescing decision back to Nagle
        # (to measure its interplay with application-level batching).
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY,
                        1 if tuning.tcp_nodelay else 0)
        if tuning.sndbuf_bytes:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF,
                            tuning.sndbuf_bytes)
        if tuning.rcvbuf_bytes:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF,
                            tuning.rcvbuf_bytes)
    except OSError:
        pass


class AddressBook:
    """Address → ``(host, port)`` for every endpoint of one deployment.

    Port assignment is deterministic: servers take ``base_port + i`` in
    :meth:`Topology.all_servers` order, clients the ports after them —
    so independently started processes sharing the same config file agree
    on the whole map without coordination.  ``base_port=0`` assigns
    ephemeral ports instead (single-process deployments only: the actual
    port is recorded when the listener binds).
    """

    def __init__(self) -> None:
        self._entries: dict[Address, tuple[str, int]] = {}

    @classmethod
    def for_topology(
        cls,
        topology: Topology,
        clients_per_partition: int = 0,
        host: str = "127.0.0.1",
        base_port: int = 7400,
    ) -> "AddressBook":
        book = cls()
        port = base_port
        for address in topology.all_servers():
            book.set(address, host, port if base_port else 0)
            if base_port:
                port += 1
        for dc in range(topology.num_dcs):
            for partition in range(topology.num_partitions):
                for index in range(clients_per_partition):
                    address = topology.client(dc, partition, index)
                    book.set(address, host, port if base_port else 0)
                    if base_port:
                        port += 1
        # The reshard driver's well-known endpoint takes the next slot:
        # every process derives it, so servers can dial ViewAck /
        # MigrateDone replies without the driver being configured in.
        book.set(reshard_controller_address(), host,
                 port if base_port else 0)
        return book

    def set(self, address: Address, host: str, port: int) -> None:
        self._entries[address] = (host, port)

    def lookup(self, address: Address) -> tuple[str, int]:
        try:
            return self._entries[address]
        except KeyError:
            raise TransportError(f"no address-book entry for {address}") \
                from None

    def __contains__(self, address: Address) -> bool:
        return address in self._entries

    def __len__(self) -> int:
        return len(self._entries)


def metrics_port_map(
    topology: Topology,
    base_port: int,
    host: str = "127.0.0.1",
) -> dict[Address, tuple[str, int]]:
    """The deterministic metrics-endpoint map of one deployment.

    Mirrors :meth:`AddressBook.for_topology` port assignment: server
    ``i`` in :meth:`Topology.all_servers` order scrapes at
    ``base_port + i`` — so a process hosting several servers binds its
    one endpoint at its *first* hosted server's slot, and external
    observers (``repro-top``) derive the whole map from the shared
    config without coordination.  ``base_port=0`` maps everything to an
    ephemeral port (single-process deployments; the bound port is
    reported at startup and recorded in supervisor ``children.json``).
    """
    ports: dict[Address, tuple[str, int]] = {}
    for index, address in enumerate(topology.all_servers()):
        ports[address] = (host, base_port + index if base_port else 0)
    return ports


class LiveTimer:
    """A cancellable wall-clock timer (TimerHandle over asyncio).

    Callback exceptions are recorded in ``hub.errors``: on the sim
    backend they would crash the run visibly, so the live backend must
    not let asyncio swallow them into a log line while ``clean_shutdown``
    stays true (a dead periodic tick never reschedules itself).
    """

    __slots__ = ("_handle", "_fired")

    def __init__(self, hub: "LiveHub", delay: float, fn, args: tuple):
        self._fired = False

        def fire() -> None:
            self._fired = True
            try:
                fn(*args)
            except Exception as exc:
                hub.errors.append(
                    f"timer callback {getattr(fn, '__qualname__', fn)!r} "
                    f"failed: {exc!r}"
                )

        self._handle = hub.loop.call_later(max(delay, 0.0), fire)

    def cancel(self) -> bool:
        if self._fired or self._handle.cancelled():
            return False
        self._handle.cancel()
        return True

    @property
    def active(self) -> bool:
        return not self._fired and not self._handle.cancelled()


class LiveStats:
    """Transfer accounting for one hub (frame bytes, not modeled bytes)."""

    __slots__ = ("messages_sent", "messages_delivered", "bytes_sent",
                 "decode_errors", "messages_dropped", "reconnects",
                 "truncated_streams", "batches_sent", "batched_frames",
                 "max_batch_frames", "connect_attempts", "chaos_dropped",
                 "chaos_delayed", "retired_frames")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_sent = 0
        self.decode_errors = 0
        #: Frames discarded because their destination's sender died with
        #: them still queued (the peer stayed down past the retry budget).
        self.messages_dropped = 0
        #: Channels re-dialed after their sender died — a crashed peer
        #: coming back (kill/restart recovery) shows up here.
        self.reconnects = 0
        #: Inbound connections that ended mid-frame (peer killed between
        #: frames' bytes).  Distinguished from decode_errors: a torn tail
        #: is an abrupt disconnect, not stream corruption.
        self.truncated_streams = 0
        #: Socket writes issued by senders (each carries >= 1 frame);
        #: ``messages_sent / batches_sent`` is the mean coalescing factor.
        self.batches_sent = 0
        #: Frames that shared their write with at least one other frame.
        self.batched_frames = 0
        self.max_batch_frames = 0
        #: Dial attempts by senders (successful or not); minus the number
        #: of channels ever opened, this is how much retrying happened.
        self.connect_attempts = 0
        #: Frames dropped / delayed by injected link faults.
        self.chaos_dropped = 0
        self.chaos_delayed = 0
        #: Frames discarded because their destination was retired (a
        #: peer resharded out of the cluster and shut down for good).
        self.retired_frames = 0


class LiveHub:
    """Per-process live-backend state: epoch, loop, connections, errors."""

    def __init__(self, book: AddressBook,
                 tuning: TransportTuningConfig | None = None):
        self.book = book
        self.stats = LiveStats()
        #: Socket knobs applied to every dialed and accepted connection.
        self.tuning = tuning if tuning is not None else TransportTuningConfig()
        #: Outgoing-connection retry behavior (chaos runs tighten it).
        self.connect_policy = ConnectRetryPolicy()
        #: Chaos hooks: directed (src DC, dst DC) -> LinkFault.  Applied
        #: by every LiveRuntime of this process on its outbound frames.
        self._link_faults: dict[tuple[int, int], LinkFault] = {}
        #: Fatal transport problems (connect exhaustion, writer crashes);
        #: a clean shutdown requires this to stay empty.
        self.errors: list[str] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        # Anchor the epoch once against the wall clock, then advance on
        # the monotonic clock: cross-process alignment comes from the
        # anchor, while NTP steps can never make `now` regress (the
        # TimeSource contract every rt.now consumer relies on).
        self._mono_anchor = (time.time() - LIVE_EPOCH_UNIX_S
                             - time.monotonic())
        #: dst -> (frame queue, sender task) of the per-destination channel.
        self._channels: dict[Address, tuple[asyncio.Queue, asyncio.Task]] = {}
        #: Destinations retired for good (peer resharded out and shut
        #: down): frames to them are silently discarded instead of
        #: burning a connect-retry budget — and recording a transport
        #: error — per background tick, forever.
        self._retired: set[Address] = set()
        self._runtimes: list["LiveRuntime"] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Seconds since :data:`LIVE_EPOCH_UNIX_S` (the backend's time
        axis, shared by every process of a deployment), monotonic within
        this process."""
        return time.monotonic() + self._mono_anchor

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def runtime(self, address: Address) -> "LiveRuntime":
        """Create the runtime adapter for one endpoint of this process."""
        runtime = LiveRuntime(self, address)
        self._runtimes.append(runtime)
        return runtime

    async def start(self) -> None:
        """Bind every endpoint's listener (ephemeral ports get recorded)."""
        for runtime in self._runtimes:
            await runtime.start()

    # ------------------------------------------------------------------
    # Link faults (chaos)
    # ------------------------------------------------------------------
    def set_link_fault(
        self, src_dc: int, dst_dc: int, *,
        delay_s: float = 0.0, drop_rate: float = 0.0,
        seed: int | None = None,
    ) -> LinkFault:
        """Install delay/drop chaos on frames ``src_dc`` -> ``dst_dc``
        sent by this process's endpoints; returns the fault for its
        counters."""
        fault = LinkFault(delay_s=delay_s, drop_rate=drop_rate, seed=seed)
        self._link_faults[(src_dc, dst_dc)] = fault
        return fault

    def clear_link_fault(self, src_dc: int, dst_dc: int) -> None:
        self._link_faults.pop((src_dc, dst_dc), None)

    def clear_link_faults(self) -> None:
        self._link_faults.clear()

    def link_fault(self, src_dc: int, dst_dc: int) -> LinkFault | None:
        """The fault on one directed channel (fast None when no chaos)."""
        if not self._link_faults:
            return None
        return self._link_faults.get((src_dc, dst_dc))

    # ------------------------------------------------------------------
    # Outgoing frames
    # ------------------------------------------------------------------
    def post(self, dst: Address, msg: Any) -> None:
        """Queue one message for delivery to ``dst`` (FIFO per process)."""
        # encode_frame memoizes by message identity, so a fan-out posting
        # the same immutable payload to every peer serializes it once.
        self.post_frame(dst, codec.encode_frame(msg))

    def retire(self, dst: Address) -> None:
        """Stop delivering to ``dst`` permanently.

        Called when a peer was resharded out of the cluster and its
        process stopped: its channel (if any) is torn down and every
        future frame to it is counted in ``stats.retired_frames`` and
        discarded — no re-dial, no retry budget, no transport error.
        Background fan-outs (heartbeats, GC broadcasts, view gossip)
        keep addressing the full topology; retirement is what keeps
        them from dialing a grave once per tick.
        """
        self._retired.add(dst)
        channel = self._channels.pop(dst, None)
        if channel is not None:
            channel[1].cancel()

    def unretire(self, dst: Address) -> None:
        """Allow delivery to ``dst`` again (it rejoined the cluster)."""
        self._retired.discard(dst)

    def is_retired(self, dst: Address) -> bool:
        return dst in self._retired

    def post_frame(self, dst: Address, frame: bytes) -> None:
        """Queue one pre-encoded frame (fan-outs encode the frame once)."""
        if self._closed:
            return
        if self._retired and dst in self._retired:
            self.stats.retired_frames += 1
            return
        channel = self._channels.get(dst)
        if channel is not None and channel[1].done():
            # The sender to this peer died (its failure is already in
            # `errors`, its undelivered frames already counted dropped).
            # Retire it and dial fresh: a crashed peer that restarted
            # from its WAL must be reachable again, and the new sender's
            # own retry budget bounds how long a still-dead peer can
            # accumulate queued frames.
            del self._channels[dst]
            self.stats.reconnects += 1
            channel = None
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(frame)
        if channel is None:
            queue: asyncio.Queue = asyncio.Queue()
            task = self.loop.create_task(self._sender(dst, queue))
            self._channels[dst] = channel = (queue, task)
        channel[0].put_nowait(frame)

    async def _sender(self, dst: Address, queue: asyncio.Queue) -> None:
        """One ordered connection per destination; retries early connects."""
        writer = None
        carry: bytes | None = None
        try:
            policy = self.connect_policy
            rng = random.Random()
            deadline = self.loop.time() + policy.max_elapsed_s
            delay = policy.initial_delay_s
            host, port = self.book.lookup(dst)
            while True:
                # Re-resolve each attempt: an ephemeral-port peer records
                # its real port only once its listener has bound.
                host, port = self.book.lookup(dst)
                if port != 0:
                    self.stats.connect_attempts += 1
                    try:
                        _, writer = await asyncio.open_connection(host, port)
                        break
                    except OSError:
                        pass
                remaining = deadline - self.loop.time()
                if remaining <= 0:
                    break
                await asyncio.sleep(
                    min(policy.jittered(delay, rng), remaining)
                )
                delay = policy.next_delay(delay)
            if writer is None:
                self.errors.append(
                    f"could not connect to {dst} at {host}:{port}"
                )
                return
            apply_socket_tuning(writer, self.tuning)
            stats = self.stats
            while True:
                if carry is not None:
                    frame, carry = carry, None
                else:
                    frame = await queue.get()
                # Coalesce: everything already queued for this peer rides
                # the same write (one syscall, one drain), up to the
                # batch-bytes cap.  Frames accumulate while this sender
                # awaits the socket, so batches grow exactly when the
                # per-frame overhead would hurt most.
                parts = [frame]
                size = len(frame)
                while size < MAX_BATCH_BYTES:
                    try:
                        nxt = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if size + len(nxt) > MAX_BATCH_BYTES:
                        # Over the cap: this frame opens the *next* batch
                        # instead of overshooting this one.  (A frame
                        # bigger than the cap on its own still goes out,
                        # alone, as a batch's first frame.)
                        carry = nxt
                        break
                    parts.append(nxt)
                    size += len(nxt)
                try:
                    # writelines is writev-style: the transport takes the
                    # frame list as-is (uvloop scatters it to the socket;
                    # the stdlib loop defers any join to C) — no
                    # per-batch b"".join copy on this hot path.
                    if len(parts) > 1:
                        writer.writelines(parts)
                    else:
                        writer.write(frame)
                    await writer.drain()
                except asyncio.CancelledError:
                    raise
                except Exception:
                    # The whole popped batch dies with the connection;
                    # count it here — the cleanup below only sees frames
                    # still queued, and the reconnect path in post_frame
                    # relies on dead senders' frames being fully counted.
                    self.stats.messages_dropped += len(parts)
                    raise
                finally:
                    # task_done() only after the bytes hit the transport:
                    # hub.drain()'s queue.join() then covers the popped-
                    # but-not-yet-written frames, not just queued ones.
                    for _ in parts:
                        queue.task_done()
                stats.batches_sent += 1
                if len(parts) > 1:
                    stats.batched_frames += len(parts)
                    if len(parts) > stats.max_batch_frames:
                        stats.max_batch_frames = len(parts)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # connection died mid-run
            self.errors.append(f"sender to {dst} failed: {exc!r}")
        finally:
            # Whatever is still queued will never be written by *this*
            # sender: count it dropped and release drain()'s join().  A
            # later post to the same destination dials a fresh channel.
            # A carried frame was already popped, so drain()'s join() is
            # waiting on its task_done too.
            if carry is not None:
                queue.task_done()
                self.stats.messages_dropped += 1
            while not queue.empty():
                queue.get_nowait()
                queue.task_done()
                self.stats.messages_dropped += 1
            if writer is not None:
                writer.close()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def drain(self, timeout_s: float = 10.0) -> None:
        """Wait until every posted outgoing frame has been *written*.

        ``queue.join()`` covers the frame a sender has popped but not yet
        flushed, so close() cannot cancel a write mid-frame after a clean
        drain.  Bounded, and skips channels whose sender died (their
        failure is already in :attr:`errors`) — a dead sender's queue can
        never finish, and periodic timers may even keep refilling it.
        """
        deadline = self.loop.time() + timeout_s
        for dst, (queue, task) in list(self._channels.items()):
            if task.done():
                continue
            remaining = deadline - self.loop.time()
            if remaining <= 0:
                self.errors.append(f"drain timeout before flushing {dst}")
                return
            try:
                await asyncio.wait_for(queue.join(), remaining)
            except asyncio.TimeoutError:
                self.errors.append(
                    f"drain timeout: {queue.qsize()} frame(s) still "
                    f"queued for {dst}"
                )
                return

    async def close(self) -> None:
        """Stop senders and listeners; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        tasks = [task for _, task in self._channels.values()]
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        for runtime in self._runtimes:
            await runtime.close()

    @property
    def clean(self) -> bool:
        """True while no transport/dispatch error has been recorded."""
        return not self.errors


class LiveRuntime:
    """ProtocolRuntime over asyncio TCP: one endpoint of a live cluster.

    Durability barrier: under WAL group commit with ``fsync: always``
    (:mod:`repro.persistence`), a version handed to :meth:`persist` is
    *buffered* until the end of the event-loop tick and made durable by
    one batched write+fsync.  The persist-before-ack contract of the
    protocol cores must survive that deferral, so every frame this
    endpoint sends after an un-synced persist — the acknowledgement the
    core emits right after persisting, and anything behind it in the
    endpoint's FIFO — is *held* here and released to the hub only by the
    covering batch's post-sync callback.  Held frames are tagged with the
    batch they wait for, and batches complete in order, so release is a
    prefix pop.  Endpoints that never persist (clients, ``fsync:
    interval/off``) pay one dict miss per send.
    """

    #: Observability hooks (class defaults: off).  The cluster boot sets
    #: instance attributes when :class:`repro.common.config.
    #: TelemetryConfig` enables them: ``telemetry`` is the process's
    #: :class:`repro.obs.telemetry.Telemetry` registry (protocol cores
    #: cache it at bind time for per-message counters), ``trace`` the
    #: process's :class:`repro.obs.tracing.TraceLog` (this adapter emits
    #: the ``wal_synced`` span; cores emit the rest).  ``None`` keeps
    #: both paths one attribute check — the byte-identity guarantee.
    telemetry = None
    trace = None

    def __init__(self, hub: LiveHub, address: Address):
        self.hub = hub
        self._address = address
        self.core = None
        #: The endpoint's durability sink (a
        #: :class:`repro.persistence.manager.PartitionDurability`), set
        #: by the cluster boot for persistent partition servers; None
        #: keeps ``persist`` a no-op (clients, ephemeral deployments).
        self.durability = None
        self._server: asyncio.AbstractServer | None = None
        self._reader_tasks: set[asyncio.Task] = set()
        #: (required batch id, dst, frame, kind) awaiting a group-commit
        #: sync (kind is the message-type name, for per-type chaos drop
        #: accounting at the eventual post).
        self._held: deque[tuple[int, Address, bytes, str]] = deque()
        #: (required batch id, sr, ut) of sampled traced writes whose
        #: ``wal_synced`` span awaits the covering group-commit sync.
        self._trace_pending: deque[tuple[int, int, int]] = deque()
        self._wait_batch = 0      # newest batch a persist() must wait for
        self._durable_batch = 0   # newest batch known synced
        #: Per-destination floor for chaos-delayed releases: strictly
        #: increasing release times keep the channel FIFO through the
        #: timer heap (equal deadlines have no order guarantee there).
        self._release_floor: dict[Address, float] = {}

    def bind(self, core) -> None:
        if self.core is not None:
            raise TransportError(
                f"{self._address}: adapter already bound to {self.core!r}"
            )
        self.core = core

    # ------------------------------------------------------------------
    # Listener
    # ------------------------------------------------------------------
    async def start(self) -> None:
        host, port = self.hub.book.lookup(self._address)
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        if port == 0:  # record the ephemeral port for later dialers
            bound = self._server.sockets[0].getsockname()[1]
            self.hub.book.set(self._address, host, bound)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
        apply_socket_tuning(writer, self.hub.tuning)
        decoder = codec.FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    if decoder.pending_bytes:
                        # The peer vanished mid-frame (SIGKILL, cut
                        # cable).  The whole frames before the clean
                        # boundary were already dispatched; the torn
                        # tail is an abrupt disconnect to account for,
                        # not corruption to die on.
                        self.hub.stats.truncated_streams += 1
                    return
                for msg in decoder.feed(data):
                    self.hub.stats.messages_delivered += 1
                    self.core.on_message(msg)
        except asyncio.CancelledError:
            # Shutdown path: end the reader quietly.  Re-raising would
            # leave the task in "cancelled" state and asyncio.streams'
            # connection_made callback logs that as an error.
            return
        except codec.CodecError as exc:
            self.hub.stats.decode_errors += 1
            self.hub.errors.append(f"{self._address}: {exc}")
        except Exception as exc:
            self.hub.errors.append(
                f"{self._address}: handler failed: {exc!r}"
            )
        finally:
            writer.close()
            if task is not None:
                # Long-lived servers see many connections come and go;
                # only in-flight readers may be retained.
                self._reader_tasks.discard(task)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._reader_tasks):
            task.cancel()
        for task in list(self._reader_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._reader_tasks.clear()

    # ------------------------------------------------------------------
    # ProtocolRuntime: identity and time
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return self._address

    @property
    def now(self) -> float:
        return self.hub.now

    # ------------------------------------------------------------------
    # ProtocolRuntime: timers
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn, *args) -> LiveTimer:
        return LiveTimer(self.hub, delay, fn, args)

    def schedule_at(self, time_s: float, fn, *args) -> LiveTimer:
        return LiveTimer(self.hub, time_s - self.hub.now, fn, args)

    def schedule_flush(self, delay: float, fn, *args) -> LiveTimer:
        """Flush deadlines (replication batcher) are loop timers like any
        other; the policy's cancel-on-threshold keeps them one-shot."""
        return LiveTimer(self.hub, delay, fn, args)

    # ------------------------------------------------------------------
    # ProtocolRuntime: sends
    # ------------------------------------------------------------------
    def send(self, dst: Address, msg: Any, size: int | None = None) -> None:
        self._post_frame(dst, codec.encode_frame(msg),
                         type(msg).__name__)

    def send_fanout(self, dsts: Iterable[Address], msg: Any) -> None:
        # Same discipline as the sim adapter: serialize the immutable
        # payload once, not once per peer.
        frame = codec.encode_frame(msg)
        kind = type(msg).__name__
        for dst in dsts:
            self._post_frame(dst, frame, kind)

    def _post_frame(self, dst: Address, frame: bytes,
                    kind: str = "") -> None:
        """Hand a frame to the hub — or hold it behind a pending sync.

        Holding *everything* sent while a batch is un-synced (not just
        the frames causally after the persist) keeps the endpoint's
        per-destination FIFO intact: a GET reply overtaking a held PUT
        acknowledgement to the same client would reorder the channel.
        """
        if self._wait_batch > self._durable_batch:
            self._held.append((self._wait_batch, dst, frame, kind))
        else:
            self._hub_post(dst, frame, kind)

    def _hub_post(self, dst: Address, frame: bytes,
                  kind: str = "") -> None:
        """The chaos choke point: every frame this endpoint hands to the
        hub — immediate sends and group-commit releases alike — passes
        the channel's :class:`LinkFault` (if any) first."""
        fault = self.hub.link_fault(self._address.dc, dst.dc)
        if fault is None:
            self.hub.post_frame(dst, frame)
            return
        if fault.drop_rate > 0 and fault.rng.random() < fault.drop_rate:
            fault.dropped += 1
            if kind:
                by_type = fault.dropped_by_type
                by_type[kind] = by_type.get(kind, 0) + 1
            self.hub.stats.chaos_dropped += 1
            return
        if fault.delay_s <= 0:
            self.hub.post_frame(dst, frame)
            return
        fault.delayed += 1
        self.hub.stats.chaos_delayed += 1
        loop = self.hub.loop
        release = loop.time() + fault.delay_s
        floor = self._release_floor.get(dst)
        if floor is not None and release <= floor:
            release = floor + 1e-6
        self._release_floor[dst] = release
        loop.call_at(release, self.hub.post_frame, dst, frame)

    def message_size(self, msg: Any) -> int:
        return modeled_message_size(msg)

    # ------------------------------------------------------------------
    # ProtocolRuntime: local work (real CPUs charge themselves)
    # ------------------------------------------------------------------
    def submit(self, cost_s: float, fn, *args,
               priority: int = FOREGROUND) -> None:
        fn(*args)

    # ------------------------------------------------------------------
    # ProtocolRuntime: durability.  The append happens before this
    # returns (so the log write precedes the acknowledgement in program
    # order); under group commit the *sync* is deferred to the end of
    # the tick, and the acknowledgement frames are held with it.
    # ------------------------------------------------------------------
    def persist(self, version: Any) -> None:
        durability = self.durability
        if durability is None:
            return
        batch = durability.append_version(version)
        trace = self.trace
        if trace is not None and trace.sampled(version.ut):
            # The ``wal_synced`` span: under group commit it belongs to
            # the covering batch's post-sync callback; other fsync
            # policies count the append as "as durable as promised".
            if batch is None:
                trace.span("wal_synced", version.sr, version.ut,
                           node=self._node_label())
            else:
                self._trace_pending.append((batch, version.sr,
                                            version.ut))
        if batch is not None and batch != self._wait_batch:
            # First persist into this batch from this endpoint: register
            # exactly one release callback for it.
            self._wait_batch = batch
            durability.notify_durable(self._on_batch_durable)

    def persist_view(self, epoch: int, members, vnodes: int) -> None:
        """WAL-log a committed cluster view (elastic membership).

        Rides the open group-commit batch like version persists, so the
        view record's durability ordering matches the versions of its
        tick.  No frame holding is needed beyond what those versions
        already impose — adopting a view sends no acknowledgement whose
        loss could strand state.
        """
        durability = self.durability
        if durability is not None:
            durability.append_view(epoch, members, vnodes)

    def retire_peer(self, dst: Address) -> None:
        """Membership hook: stop dialing a peer that left for good."""
        self.hub.retire(dst)

    def _on_batch_durable(self, batch_id: int) -> None:
        """Group-commit sync completed: release the frames it covered."""
        if batch_id > self._durable_batch:
            self._durable_batch = batch_id
        pending = self._trace_pending
        if pending:
            trace, node = self.trace, self._node_label()
            while pending and pending[0][0] <= batch_id:
                _, sr, ut = pending.popleft()
                if trace is not None:
                    trace.span("wal_synced", sr, ut, node=node)
        held = self._held
        post = self._hub_post
        while held and held[0][0] <= batch_id:
            _, dst, frame, kind = held.popleft()
            post(dst, frame, kind)

    def _node_label(self) -> str:
        address = self._address
        return f"dc{address.dc}-p{address.partition}"
