#!/usr/bin/env python3
"""HA-POCC surviving a network partition (Sections III-B and IV-C).

Timeline (simulated):

  t=0.0   normal optimistic operation across 3 DCs
  t=1.0   DC0 <-> DC1 partition starts; a DC1 client has a causal
          dependency on an item DC1 can no longer receive
  ~t=1.3  its blocked GET times out; the server closes the session; the
          client re-initializes in pessimistic mode and completes the read
          against the Global Stable Snapshot
  t=3.0   the partition heals
  ~t=4.0  the client promotes itself back to the optimistic protocol and
          reads the freshest data again

Run:  python examples/partition_failover.py
"""

from repro import ClusterConfig, ExperimentConfig, ProtocolConfig, WorkloadConfig, build_cluster


def run_op(built, issue, timeout_s=5.0):
    done = {}
    issue(lambda reply: done.setdefault("reply", reply))
    deadline = built.sim.now + timeout_s
    while "reply" not in done and built.sim.now < deadline:
        built.sim.run(until=built.sim.now + 0.01)
    return done.get("reply")


def main() -> None:
    config = ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3, num_partitions=2, keys_per_partition=50,
            protocol="ha_pocc",
            protocol_config=ProtocolConfig(
                block_timeout_s=0.3,
                ha_stabilization_interval_s=0.050,
                ha_promotion_retry_s=1.0,
            ),
        ),
        workload=WorkloadConfig(clients_per_partition=1),
        name="failover",
    )
    built = build_cluster(config)
    sim = built.sim
    key_x = built.pools.key(0, 0)
    key_y = built.pools.key(1, 0)

    def client(dc, partition=0):
        return next(c for c in built.clients
                    if c.address.dc == dc and c.address.partition == partition)

    print(f"[t={sim.now:5.2f}] normal operation: warm up the cluster")
    run_op(built, lambda cb: client(0).put(key_x, "X-old", cb))
    sim.run(until=1.0)

    print(f"[t={sim.now:5.2f}] PARTITION: DC0 <-/-> DC1")
    built.faults.partition_dcs([0], [1])

    # DC0 now writes X: it reaches DC2 but can no longer reach DC1.
    run_op(built, lambda cb: client(0).put(key_x, "X", cb))
    sim.run(until=sim.now + 0.3)

    # DC2 still hears DC0: it reads X and writes Y (Y depends on X); Y
    # replicates to DC1, planting the doomed dependency.
    run_op(built, lambda cb: client(2).get(key_x, cb))
    run_op(built, lambda cb: client(2).put(key_y, "Y", cb))
    sim.run(until=sim.now + 0.3)

    victim = client(1, partition=1)
    got_y = run_op(built, lambda cb: victim.get(key_y, cb))
    print(f"[t={sim.now:5.2f}] DC1 client reads Y={got_y.value!r} "
          f"(optimistic: fresh, unstable)")

    print(f"[t={sim.now:5.2f}] DC1 client GETs x -> blocks on the missing "
          f"dependency...")
    reply = run_op(built, lambda cb: victim.get(key_x, cb), timeout_s=3.0)
    print(f"[t={sim.now:5.2f}] ...server closed the session after "
          f"{config.cluster.protocol_config.block_timeout_s}s; client "
          f"demoted (pessimistic={victim.pessimistic}) and got the stable "
          f"version: {reply.value!r}")

    # The demoted client keeps working through the partition.
    run_op(built, lambda cb: victim.put(built.pools.key(0, 1),
                                        "still-working", cb))
    print(f"[t={sim.now:5.2f}] demoted client writes fine during the "
          f"partition (demotions={victim.demotions})")

    sim.run(until=3.0)
    print(f"[t={sim.now:5.2f}] HEAL")
    built.faults.heal_all()
    sim.run(until=4.5)

    reply = run_op(built, lambda cb: victim.get(key_x, cb))
    print(f"[t={sim.now:5.2f}] client promoted back "
          f"(pessimistic={victim.pessimistic}, "
          f"promotions={victim.promotions}); GET(x) now returns "
          f"{reply.value!r}")

    assert reply.value == "X"
    assert not victim.pessimistic
    print("\nHA-POCC stayed available through the partition and restored "
          "optimistic freshness after the heal.")


if __name__ == "__main__":
    main()
