"""The plain-asyncio scrape endpoint: just enough HTTP for curl,
Prometheus, and ``repro-top``."""

import asyncio
import json

from repro.obs.httpd import MetricsServer
from repro.obs.telemetry import Telemetry


async def _request(port: int, raw: str) -> tuple[str, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw.encode("latin-1"))
    await writer.drain()
    data = await reader.read(-1)
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    return head.decode("latin-1"), body


def _serve(handler):
    """Run ``handler(server, port)`` against a live endpoint."""
    async def scenario():
        telemetry = Telemetry()
        telemetry.counter("repro_things_total").inc(3)
        telemetry.gauge("repro_depth", lambda: 1.5)
        server = MetricsServer(telemetry, meta={"process_label": "dc0-p0"})
        port = await server.start()
        assert port > 0
        try:
            await handler(server, port)
        finally:
            await server.close()

    asyncio.run(scenario())


def test_metrics_route_serves_prometheus_text():
    async def check(server, port):
        head, body = await _request(port, "GET /metrics HTTP/1.0\r\n\r\n")
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain; version=0.0.4" in head
        assert "Connection: close" in head
        text = body.decode()
        assert "repro_things_total 3" in text
        assert "repro_depth 1.5" in text
        # Content-Length must match the payload exactly (curl trusts it).
        length = int(head.split("Content-Length: ")[1].split("\r\n")[0])
        assert length == len(body)

    _serve(check)


def test_vars_json_merges_process_meta():
    async def check(server, port):
        head, body = await _request(port,
                                    "GET /vars.json HTTP/1.0\r\n\r\n")
        assert "application/json" in head
        doc = json.loads(body)
        assert doc["process_label"] == "dc0-p0"
        assert doc["metrics"]["repro_things_total"]["_"] == 3
        assert doc["uptime_seconds"] >= 0

    _serve(check)


def test_healthz_and_unknown_paths():
    async def check(server, port):
        head, body = await _request(port, "GET /healthz HTTP/1.0\r\n\r\n")
        assert "200 OK" in head
        assert body == b"ok\n"
        head, _ = await _request(port, "GET /nope HTTP/1.0\r\n\r\n")
        assert "404 Not Found" in head

    _serve(check)


def test_head_requests_and_bad_methods():
    async def check(server, port):
        head, body = await _request(port, "HEAD /metrics HTTP/1.0\r\n\r\n")
        assert "200 OK" in head
        assert body == b""  # HEAD: headers only
        head, _ = await _request(port, "POST /metrics HTTP/1.0\r\n\r\n")
        assert "400 Bad Request" in head

    _serve(check)


def test_query_strings_are_ignored_for_routing():
    async def check(server, port):
        head, _ = await _request(
            port, "GET /metrics?debug=1 HTTP/1.0\r\n\r\n")
        assert "200 OK" in head

    _serve(check)


def test_close_is_idempotent_and_frees_the_port():
    async def scenario():
        server = MetricsServer(Telemetry())
        port = await server.start()
        await server.close()
        await server.close()
        # The slot is free again: a new listener can take it.
        again = MetricsServer(Telemetry(), port=port)
        assert await again.start() == port
        await again.close()

    asyncio.run(scenario())
