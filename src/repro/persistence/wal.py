"""The per-partition append-only write-ahead log.

A WAL is a directory of numbered **segment files** (``wal-00000001.log``,
``wal-00000002.log``, …), each a concatenation of the live codec's
length-prefixed tagged-tree frames (:mod:`repro.runtime.codec`) — so a
WAL record round-trips :class:`repro.storage.version.Version` and
:class:`repro.protocols.cops.CopsVersion` payloads with exactly the
fidelity of the wire.  Records are plain tagged tuples:

=====================================  ================================
record                                 meaning
=====================================  ================================
``("walseg", format, seq)``            segment header (first record)
``("v", version)``                     one durable version; appended
                                       for every locally created *and*
                                       every replicated version, before
                                       it is acknowledged to anyone.  A
                                       later record with the same
                                       ``(key, sr, ut)`` identity
                                       supersedes an earlier one (COPS*
                                       re-logs a version when its
                                       dependency checks complete and
                                       the ``visible`` flag flips).
``("view", epoch, members, vnodes)``   a committed cluster view (elastic
                                       membership); logged at every
                                       ``ViewCommit`` adoption and
                                       re-logged after each snapshot
                                       roll so the newest view always
                                       lives in an uncovered segment.
                                       The highest epoch wins on replay.
=====================================  ================================

Torn tails: a crash (or ``fsync: interval/off``) may leave the *last*
segment ending mid-frame.  :func:`read_segment` leans on
:class:`repro.runtime.codec.FrameDecoder`'s clean-boundary accounting to
split "the suffix is simply missing" (tolerated: recovery truncates at
the boundary) from "a complete frame does not decode" (corruption:
:class:`WalError`).  A torn frame in any segment *other than* the last
is corruption too — appends only ever go to the newest segment.

Fsync modes (see :class:`repro.common.config.PersistenceConfig`):
``always`` fsyncs after every append, ``interval`` writes through to the
OS on every append and fsyncs at most once per interval, ``off`` leaves
everything to the OS until :meth:`WriteAheadLog.flush`.

**Group commit** (:class:`GroupCommit`): the live backend coalesces every
append issued during one event-loop tick into a single
:meth:`WriteAheadLog.append_many` — one buffered write, one fsync — and
fires per-batch callbacks *after* the sync, which is what lets the
transport release the acknowledgements the batch covers
(:class:`repro.runtime.transport.LiveRuntime`).  Under ``fsync: always``
full durability then costs one sync per busy tick instead of one per
record; the fsync-mode meanings above are unchanged, they just apply at
batch granularity.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.common.errors import ReproError
from repro.runtime import codec

#: On-disk format version stamped into segment headers and snapshots.
WAL_FORMAT = 1

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"

#: Record tags.
SEGMENT_HEADER_TAG = "walseg"
VERSION_TAG = "v"
VIEW_TAG = "view"


def view_record(epoch: int, members, vnodes: int) -> tuple:
    """The WAL record for one committed cluster view."""
    return (VIEW_TAG, int(epoch),
            tuple(int(p) for p in members), int(vnodes))


class WalError(ReproError):
    """Raised on corrupt or inconsistent on-disk durability state."""


def segment_name(seq: int) -> str:
    return f"{SEGMENT_PREFIX}{seq:08d}{SEGMENT_SUFFIX}"


def segment_seq(path: Path) -> int | None:
    """The sequence number encoded in a segment file name, or None."""
    name = path.name
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_segments(directory: Path) -> list[tuple[int, Path]]:
    """All WAL segments under ``directory``, ordered by sequence number."""
    found = []
    for path in directory.iterdir():
        seq = segment_seq(path)
        if seq is not None:
            found.append((seq, path))
    found.sort()
    return found


def fsync_directory(directory: Path) -> None:
    """Make a rename/create in ``directory`` itself durable (POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_segment(path: Path) -> tuple[list[Any], int, int]:
    """Decode one segment: ``(records, clean_offset, file_size)``.

    ``clean_offset < file_size`` means the segment ends in a torn frame
    (tolerable only for the newest segment — the caller decides).  A
    complete-but-undecodable frame raises :class:`WalError` carrying the
    byte offset where the stream went bad.
    """
    data = path.read_bytes()
    decoder = codec.FrameDecoder()
    try:
        records = decoder.feed(data)
    except codec.CodecError as exc:
        raise WalError(
            f"{path}: corrupt record at byte {decoder.consumed_bytes}: {exc}"
        ) from exc
    return records, decoder.consumed_bytes, len(data)


def check_segment_header(path: Path, records: list[Any], seq: int) -> list[Any]:
    """Validate and strip a segment's header record."""
    if not records:
        # A zero-length (or fully torn) segment: created, then crashed
        # before the header hit the disk.  Treat as empty.
        return []
    head = records[0]
    if (not isinstance(head, tuple) or len(head) != 3
            or head[0] != SEGMENT_HEADER_TAG):
        raise WalError(f"{path}: missing segment header record")
    _, fmt, header_seq = head
    if fmt != WAL_FORMAT:
        raise WalError(f"{path}: unsupported WAL format {fmt!r}")
    if header_seq != seq:
        raise WalError(
            f"{path}: header sequence {header_seq} does not match file name"
        )
    return records[1:]


def truncate_segment(path: Path, clean_offset: int) -> int:
    """Cut a torn tail off a segment; returns the bytes removed."""
    size = path.stat().st_size
    if clean_offset >= size:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(clean_offset)
        handle.flush()
        os.fsync(handle.fileno())
    return size - clean_offset


class DiskFault:
    """Injected disk misbehavior for one WAL (chaos: a stalling or dying
    device).

    ``sync_delay_s`` stalls every fsync (a saturated device whose write
    queue backs up); ``fail_syncs`` makes the next N fsyncs raise
    ``OSError(EIO)`` (a device returning write errors).  Attached to a
    log via :attr:`WriteAheadLog.disk_fault`; detach by setting it back
    to None.  All syncs funnel through :meth:`WriteAheadLog._sync`, so
    the fault covers every fsync mode, group commit, segment rolls and
    shutdown flushes alike.
    """

    __slots__ = ("sync_delay_s", "fail_syncs", "stalls", "failures")

    def __init__(self, sync_delay_s: float = 0.0, fail_syncs: int = 0):
        self.sync_delay_s = sync_delay_s
        self.fail_syncs = fail_syncs
        self.stalls = 0
        self.failures = 0

    def apply(self) -> None:
        """Called before each fsync: stall, then maybe fail."""
        if self.sync_delay_s > 0:
            self.stalls += 1
            time.sleep(self.sync_delay_s)
        if self.fail_syncs > 0:
            self.fail_syncs -= 1
            self.failures += 1
            raise OSError(5, "injected disk fault: fsync failed")


class WalStats:
    """Counters one :class:`WriteAheadLog` accumulates over its life."""

    __slots__ = ("records_appended", "bytes_appended", "syncs", "rolls",
                 "group_commits", "max_batch_records")

    def __init__(self) -> None:
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        self.rolls = 0
        #: Batched writes via :meth:`WriteAheadLog.append_many`;
        #: ``records_appended / group_commits`` is the mean batch size.
        self.group_commits = 0
        self.max_batch_records = 0


class WriteAheadLog:
    """Append-only log over numbered segments in one directory.

    The caller opens the log only after recovery has read (and, for the
    newest segment, tail-truncated) the existing state — appending after
    a torn tail would hide every later record behind undecodable bytes.
    """

    def __init__(
        self,
        directory: Path | str,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        start_seq: int = 1,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync_mode = fsync
        self._fsync_interval_s = fsync_interval_s
        self._last_sync = time.monotonic()
        self.stats = WalStats()
        #: Chaos hook: when set, every sync stalls and/or fails per the
        #: fault's parameters (see :class:`DiskFault`).
        self.disk_fault: DiskFault | None = None
        #: Telemetry hook: when set, every sync records its wall-clock
        #: duration (seconds) — the ``repro_wal_fsync_seconds`` summary.
        #: None (one attribute check per sync) when telemetry is off.
        self.sync_timing: Callable[[float], Any] | None = None
        self._closed = False
        segments = list_segments(self.directory)
        if segments:
            self._seq, path = segments[-1]
            self._file = open(path, "ab")
        else:
            self._seq = start_seq
            self._file = self._create_segment(self._seq)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: Any) -> None:
        """Append one codec-encodable record and apply the fsync policy."""
        if self._closed:
            raise WalError("append to a closed WAL")
        frame = codec.encode_frame(record)
        self._file.write(frame)
        self.stats.records_appended += 1
        self.stats.bytes_appended += len(frame)
        self._apply_fsync_policy()

    def append_many(self, frames: Sequence[bytes]) -> None:
        """Append a whole group-commit batch of pre-encoded record frames.

        One buffered write for the joined batch, then the fsync policy
        once — the group-commit amortization.  Callers encode records
        with :func:`repro.runtime.codec.encode_frame` (what :meth:`append`
        does internally), so the on-disk format is byte-for-byte the same
        as per-record appends.
        """
        if self._closed:
            raise WalError("append to a closed WAL")
        if not frames:
            return
        data = frames[0] if len(frames) == 1 else b"".join(frames)
        self._file.write(data)
        self.stats.records_appended += len(frames)
        self.stats.bytes_appended += len(data)
        self.stats.group_commits += 1
        if len(frames) > self.stats.max_batch_records:
            self.stats.max_batch_records = len(frames)
        self._apply_fsync_policy()

    def _apply_fsync_policy(self) -> None:
        mode = self._fsync_mode
        if mode == "always":
            self._sync()
        elif mode == "interval":
            self._file.flush()
            if time.monotonic() - self._last_sync >= self._fsync_interval_s:
                self._sync()
        # "off": leave buffering to the runtime until flush()/close().

    def append_version(self, version: Any) -> None:
        """Log one durable version (the ``rt.persist`` target)."""
        self.append((VERSION_TAG, version))

    def append_view(self, epoch: int, members, vnodes: int) -> None:
        """Log one committed cluster view (the ``rt.persist_view`` target)."""
        self.append(view_record(epoch, members, vnodes))

    def _sync(self) -> None:
        self._file.flush()
        if self.disk_fault is not None:
            self.disk_fault.apply()
        timing = self.sync_timing
        if timing is not None:
            started = time.monotonic()
            os.fsync(self._file.fileno())
            self._last_sync = time.monotonic()
            timing(self._last_sync - started)
        else:
            os.fsync(self._file.fileno())
            self._last_sync = time.monotonic()
        self.stats.syncs += 1

    def flush(self) -> None:
        """Force everything appended so far onto stable storage."""
        if self._closed:
            return
        self._sync()

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """Sequence number of the segment currently being appended."""
        return self._seq

    @property
    def path(self) -> Path:
        return self.directory / segment_name(self._seq)

    def roll(self) -> int:
        """Close the current segment and start the next; returns its seq.

        Called by the snapshot path: the snapshot then covers every
        segment *before* the returned one, which become deletable the
        moment the snapshot is durable.
        """
        self._sync()
        self._file.close()
        self._seq += 1
        self._file = self._create_segment(self._seq)
        self.stats.rolls += 1
        return self._seq

    def _create_segment(self, seq: int):
        path = self.directory / segment_name(seq)
        handle = open(path, "ab")
        handle.write(codec.encode_frame((SEGMENT_HEADER_TAG, WAL_FORMAT, seq)))
        handle.flush()
        os.fsync(handle.fileno())
        fsync_directory(self.directory)
        return handle

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close; safe to call more than once."""
        if self._closed:
            return
        self._sync()
        self._file.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class GroupCommit:
    """Coalesces same-tick WAL appends into one write + one policy sync.

    The live hot path's durability amortizer: protocol handlers running
    in one event-loop tick each :meth:`append` their record, the first
    append of the tick schedules :meth:`commit` via the supplied
    ``schedule`` callable (``loop.call_soon`` on the live backend — it
    runs after every handler the current loop iteration had ready), and
    the whole batch hits the segment file as one
    :meth:`WriteAheadLog.append_many`.

    Batches are numbered from 1 and commit strictly in order.
    :meth:`append` returns the id of the batch that will cover the
    record; :meth:`notify_durable` registers a ``callback(batch_id)``
    fired *after* that batch's write+sync — the hook the transport uses
    to release acknowledgements under ``fsync: always`` (the sync is the
    fsync-policy sync, so under ``interval``/``off`` the callbacks fire
    after the buffered write only; the ack-deferral decision for those
    modes is the caller's).

    With ``schedule=None`` every append commits immediately — the
    pre-group-commit behavior, used by synchronous contexts (tests,
    offline tools) that have no event loop to defer to.

    Crash semantics: a record is in user-space memory between
    :meth:`append` and :meth:`commit`; SIGKILL in that window loses it —
    which is exactly why its acknowledgement is withheld until the
    post-sync callback.  Recovery sees a clean prefix either way
    (batches are concatenated codec frames, same as singles).
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        schedule: Callable[[Callable[[], Any]], Any] | None = None,
    ):
        self.wal = wal
        self._schedule = schedule
        self._frames: list[bytes] = []
        self._callbacks: list[Callable[[int], None]] = []
        self._open_batch = 0     # id of the batch now accumulating (0=none)
        self._next_batch = 1
        self._committed = 0

    @property
    def pending_records(self) -> int:
        """Records appended but not yet committed to the segment file."""
        return len(self._frames)

    @property
    def committed_batch(self) -> int:
        return self._committed

    def append(self, record: Any) -> int:
        """Buffer one record; returns the batch id that will cover it."""
        if self._open_batch == 0:
            self._open_batch = self._next_batch
            self._next_batch += 1
            if self._schedule is not None:
                self._schedule(self.commit)
        self._frames.append(codec.encode_frame(record))
        batch = self._open_batch
        if self._schedule is None:
            self.commit()
        return batch

    def notify_durable(self, callback: Callable[[int], None]) -> None:
        """Run ``callback(batch_id)`` right after the open batch's sync.

        Must be called while the batch is open (i.e. after an
        :meth:`append` that returned its id); with ``schedule=None``
        there is no open batch to attach to — callers detect that mode
        and skip deferral entirely.
        """
        self._callbacks.append(callback)

    def commit(self) -> int:
        """Write + policy-sync the open batch, then fire its callbacks.

        Idempotent per batch: an explicit commit (snapshot roll, flush)
        leaves the later scheduled one a no-op.  Returns the id of the
        newest committed batch.
        """
        if self._open_batch == 0:
            return self._committed
        frames = self._frames
        callbacks = self._callbacks
        batch = self._open_batch
        self._frames = []
        self._callbacks = []
        self._open_batch = 0
        if self.wal.closed:
            # The log is gone but records were appended after the
            # shutdown flush covered it.  Silently returning here would
            # drop them on the floor while the caller believes they were
            # logged — the bug class recovery cannot catch, because the
            # clean WAL prefix looks complete.  Their acks were never
            # released (the un-fired callbacks were holding them), so
            # raising turns a silent durability hole into a loud one.
            raise WalError(
                f"group commit: {len(frames)} record(s) appended after "
                f"the WAL was closed (batch {batch})"
            )
        self.wal.append_many(frames)
        self._committed = batch
        for callback in callbacks:
            callback(batch)
        return batch

    def flush(self) -> None:
        """Commit whatever is pending and force it onto stable storage."""
        self.commit()
        self.wal.flush()


def iter_version_records(records: Iterable[Any], source: str) -> Iterable[Any]:
    """Yield the version payload of every ``("v", …)`` record.

    View records (a known non-version tag) are skipped — recovery reads
    them through :func:`newest_view_record`.  Unknown tags raise: an
    operator mixing WAL formats should hear about it rather than
    silently lose records.
    """
    for record in records:
        if (isinstance(record, tuple) and len(record) == 2
                and record[0] == VERSION_TAG):
            yield record[1]
        elif (isinstance(record, tuple) and len(record) == 4
                and record[0] == VIEW_TAG):
            continue
        else:
            raise WalError(f"{source}: unknown WAL record {record!r}")


def newest_view_record(records: Iterable[Any]) -> tuple | None:
    """The highest-epoch ``("view", …)`` record, or None."""
    newest: tuple | None = None
    for record in records:
        if (isinstance(record, tuple) and len(record) == 4
                and record[0] == VIEW_TAG):
            if newest is None or record[1] > newest[1]:
                newest = record
    return newest
