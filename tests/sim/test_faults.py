"""Tests for network partition injection."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import server_address
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network

from tests.sim.test_network import Recorder


def _setup():
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    endpoints = {}
    for dc in range(3):
        endpoint = Recorder(sim, server_address(dc, 0))
        network.register(endpoint)
        endpoints[dc] = endpoint
    return sim, network, FaultInjector(sim, network), endpoints


def test_partition_blocks_both_directions():
    sim, network, faults, nodes = _setup()
    faults.partition_dcs([0], [1])
    network.send(nodes[0].address, nodes[1].address, "a->b")
    network.send(nodes[1].address, nodes[0].address, "b->a")
    sim.run()
    assert nodes[0].received == [] and nodes[1].received == []
    assert faults.active


def test_partition_leaves_third_dc_reachable():
    sim, network, faults, nodes = _setup()
    faults.partition_dcs([0], [1])
    network.send(nodes[0].address, nodes[2].address, "a->c")
    network.send(nodes[1].address, nodes[2].address, "b->c")
    sim.run()
    assert len(nodes[2].received) == 2


def test_heal_delivers_held_messages():
    sim, network, faults, nodes = _setup()
    faults.partition_dcs([0], [1, 2])
    network.send(nodes[0].address, nodes[1].address, 1)
    network.send(nodes[0].address, nodes[1].address, 2)
    sim.run()
    assert nodes[1].received == []
    faults.heal_all()
    sim.run()
    assert [msg for _, msg in nodes[1].received] == [1, 2]
    assert not faults.active


def test_isolate_dc_cuts_everything():
    sim, network, faults, nodes = _setup()
    faults.isolate_dc(2, all_dcs=range(3))
    assert faults.is_cut(2, 0) and faults.is_cut(0, 2)
    assert faults.is_cut(2, 1) and faults.is_cut(1, 2)
    assert not faults.is_cut(0, 1)


def test_overlapping_groups_rejected():
    sim, network, faults, nodes = _setup()
    with pytest.raises(SimulationError):
        faults.partition_dcs([0, 1], [1, 2])


def test_scheduled_partition_and_heal():
    sim, network, faults, nodes = _setup()
    faults.schedule_partition(at=1.0, group_a=[0], group_b=[1],
                              heal_after=2.0)

    def try_send():
        network.send(nodes[0].address, nodes[1].address, sim.now)

    for t in (0.5, 1.5, 2.5, 3.5):
        sim.schedule_at(t, try_send)
    sim.run()
    times = [msg for _, msg in nodes[1].received]
    # 0.5 delivered pre-partition; 1.5/2.5 held until the heal at 3.0;
    # 3.5 delivered normally.
    assert times == [0.5, 1.5, 2.5, 3.5]
    delivery_times = [t for t, _ in nodes[1].received]
    assert delivery_times[0] == pytest.approx(0.510)
    assert all(t >= 3.0 for t in delivery_times[1:3])
    assert faults.partitions_started == 1
    assert faults.partitions_healed == 1


# ----------------------------------------------------------------------
# Asymmetric cuts and their interaction with symmetric partitions
# ----------------------------------------------------------------------
def test_one_way_cut_holds_only_one_direction():
    sim, network, faults, nodes = _setup()
    faults.cut_one_way(0, 1)
    network.send(nodes[0].address, nodes[1].address, "a->b")
    network.send(nodes[1].address, nodes[0].address, "b->a")
    sim.run()
    assert [msg for _, msg in nodes[0].received] == ["b->a"]
    assert nodes[1].received == []
    assert faults.is_cut(0, 1) and not faults.is_cut(1, 0)
    faults.heal_one_way(0, 1)
    sim.run()
    assert [msg for _, msg in nodes[1].received] == ["a->b"]
    assert faults.one_way_cuts_started == 1
    assert faults.one_way_cuts_healed == 1
    assert not faults.any_fault_active


def test_self_cut_rejected():
    sim, network, faults, nodes = _setup()
    with pytest.raises(SimulationError):
        faults.cut_one_way(1, 1)


def test_overlapping_one_way_cut_and_partition():
    """A one-way cut layered on a symmetric partition of the same pair:
    healing the partition must not resurrect the directed cut's pair, and
    healing everything leaves no cut behind."""
    sim, network, faults, nodes = _setup()
    faults.cut_one_way(0, 1)
    faults.partition_dcs([0], [1])  # re-cuts 0->1, adds 1->0
    assert faults.is_cut(0, 1) and faults.is_cut(1, 0)
    network.send(nodes[0].address, nodes[1].address, "a->b")
    network.send(nodes[1].address, nodes[0].address, "b->a")
    sim.run()
    assert nodes[0].received == [] and nodes[1].received == []
    faults.heal_all()
    sim.run()
    assert not faults.active
    assert [msg for _, msg in nodes[1].received] == ["a->b"]
    assert [msg for _, msg in nodes[0].received] == ["b->a"]


def test_heal_one_direction_of_symmetric_partition():
    """heal_one_way degrades a symmetric partition to an asymmetric cut:
    the healed direction flushes its held messages, the other keeps
    holding."""
    sim, network, faults, nodes = _setup()
    faults.partition_dcs([0], [1])
    network.send(nodes[0].address, nodes[1].address, "a->b")
    network.send(nodes[1].address, nodes[0].address, "b->a")
    sim.run()
    faults.heal_one_way(0, 1)
    sim.run()
    assert [msg for _, msg in nodes[1].received] == ["a->b"]
    assert nodes[0].received == []  # 1->0 still cut
    assert faults.is_cut(1, 0) and not faults.is_cut(0, 1)
    assert faults.any_fault_active
    faults.heal_all()
    sim.run()
    assert [msg for _, msg in nodes[0].received] == ["b->a"]


# ----------------------------------------------------------------------
# Lossy links
# ----------------------------------------------------------------------
def test_lossy_link_requires_rng():
    sim, network, faults, nodes = _setup()  # constructed without rng
    with pytest.raises(SimulationError):
        faults.lose_messages(0, 1, 0.5)


def test_lossy_link_drops_and_accounts():
    import random as _random

    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    endpoints = {}
    for dc in range(2):
        endpoint = Recorder(sim, server_address(dc, 0))
        network.register(endpoint)
        endpoints[dc] = endpoint
    faults = FaultInjector(sim, network, rng=_random.Random(7))
    faults.lose_messages(0, 1, 1.0)  # certain loss: no RNG draw needed
    for i in range(10):
        network.send(endpoints[0].address, endpoints[1].address, i)
    sim.run()
    assert endpoints[1].received == []
    stats = network.stats
    assert stats.messages_dropped == 10
    assert stats.dropped_by_type == {"int": 10}
    # The accounting identity: every accepted message is exactly one of
    # delivered / held / dropped / expired.
    assert stats.messages_sent == (
        stats.messages_delivered + stats.messages_held
        + stats.messages_dropped + stats.messages_expired
    )
    faults.stop_losing(0, 1)
    network.send(endpoints[0].address, endpoints[1].address, "after")
    sim.run()
    # A healed lossy link delivers nothing retroactively — unlike a cut.
    assert [msg for _, msg in endpoints[1].received] == ["after"]
    assert not faults.any_fault_active


def test_lossy_link_kind_filter():
    import random as _random

    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    endpoints = {}
    for dc in range(2):
        endpoint = Recorder(sim, server_address(dc, 0))
        network.register(endpoint)
        endpoints[dc] = endpoint
    faults = FaultInjector(sim, network, rng=_random.Random(7))
    faults.lose_messages(0, 1, 1.0, kinds=("str",))
    network.send(endpoints[0].address, endpoints[1].address, "doomed")
    network.send(endpoints[0].address, endpoints[1].address, 42)
    sim.run()
    assert [msg for _, msg in endpoints[1].received] == [42]
    assert network.stats.dropped_by_type == {"str": 1}


# ----------------------------------------------------------------------
# Missing-collaborator errors and global cleanup
# ----------------------------------------------------------------------
def test_slow_link_requires_latency_model():
    sim, network, faults, nodes = _setup()  # no GeoLatencyModel
    with pytest.raises(SimulationError):
        faults.slow_link(0, 1, 10.0)


def test_clock_step_requires_clocks():
    sim, network, faults, nodes = _setup()  # no clocks registered
    with pytest.raises(SimulationError):
        faults.step_dc_clocks(0, 1000)


def test_clear_all_faults_clears_everything():
    import random as _random

    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    endpoints = {}
    for dc in range(3):
        endpoint = Recorder(sim, server_address(dc, 0))
        network.register(endpoint)
        endpoints[dc] = endpoint
    faults = FaultInjector(sim, network, rng=_random.Random(3))
    faults.partition_dcs([0], [1])
    faults.cut_one_way(1, 2)
    faults.lose_messages(2, 0, 0.5)
    assert faults.any_fault_active
    faults.clear_all_faults()
    assert not faults.any_fault_active
    assert not faults.active
