"""Smoke tests for the per-figure experiment registry (at smoke scale)."""

import pytest

from repro.common.errors import ConfigError
from repro.harness.figures import FIGURES, FigureData
from repro.harness.reportmd import figure_markdown, render_markdown
from repro.harness.scales import SCALES, get_scale


def test_every_paper_figure_registered():
    assert sorted(FIGURES) == [
        "1a", "1b", "1c", "2a", "2b", "3a", "3b", "3c", "3d",
    ]


def test_scales_available():
    for name in ("smoke", "bench", "paper"):
        assert name in SCALES
    assert get_scale("paper").partitions == 32
    with pytest.raises(ConfigError):
        get_scale("nope")


@pytest.fixture(scope="module")
def fig1a():
    return FIGURES["1a"](scale="smoke")


def test_fig1a_has_both_series(fig1a):
    assert set(fig1a.series) == {"POCC", "Cure*"}
    assert all(y > 0 for y in fig1a.ys("POCC"))


def test_fig1a_systems_comparable(fig1a):
    """The paper's claim at any scale: no large throughput gap."""
    for (x1, pocc), (x2, cure) in zip(fig1a.series["POCC"],
                                      fig1a.series["Cure*"]):
        assert x1 == x2
        assert abs(pocc - cure) / max(pocc, cure) < 0.35


def test_table_text_renders(fig1a):
    text = fig1a.table_text()
    assert "Figure 1a" in text
    assert "POCC" in text and "Cure*" in text


def test_markdown_rendering(fig1a):
    md = figure_markdown(fig1a)
    assert "### Figure 1a" in md
    assert "| partitions |" in md
    full = render_markdown([fig1a], scale="smoke")
    assert "# Reproduced figures" in full


def test_figure_data_accessors():
    data = FigureData(figure_id="x", title="t", x_label="x", series={})
    data.add("s", 1.0, 2.0)
    data.add("s", 3.0, 4.0)
    assert data.xs("s") == [1.0, 3.0]
    assert data.ys("s") == [2.0, 4.0]


def test_fig2b_staleness_series_present():
    data = FIGURES["2b"](scale="smoke")
    assert "% old" in data.series
    assert "% unmerged" in data.series
    assert all(0 <= y <= 100 for y in data.ys("% old"))


def test_fig3d_pocc_fresher_than_cure():
    data = FIGURES["3d"](scale="smoke")
    pocc_old = data.ys("POCC % old")
    cure_old = data.ys("Cure* % old")
    # Direction check at smoke scale: POCC strictly fresher on average.
    assert sum(pocc_old) < sum(cure_old)
