"""The per-experiment metrics registry.

One :class:`MetricsRegistry` is shared by every client and server of an
experiment.  The harness arms it when the warmup ends and disarms it when
the measurement window closes, so steady-state numbers are not polluted by
ramp-up or drain-down.  Blocking events that *start* inside the window are
attributed to it even if they resolve after it closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import OpType
from repro.metrics.histogram import LogHistogram
from repro.metrics.staleness import StalenessAggregate


@dataclass(slots=True)
class OpStats:
    """Latency + count for one operation type."""

    completed: int = 0
    latency: LogHistogram = field(default_factory=LogHistogram)

    def record(self, latency_s: float) -> None:
        self.completed += 1
        self.latency.record(latency_s)


@dataclass(slots=True)
class BlockingStats:
    """Server-side stall accounting for one blocking cause.

    ``attempts`` counts operations that *could* have blocked (the
    denominator of the blocking probability); ``blocked`` those that did.
    """

    attempts: int = 0
    blocked: int = 0
    total_block_time_s: float = 0.0
    block_time: LogHistogram = field(default_factory=LogHistogram)

    def record_attempt(self) -> None:
        self.attempts += 1

    def record_block(self, duration_s: float) -> None:
        self.blocked += 1
        self.total_block_time_s += duration_s
        self.block_time.record(duration_s)

    @property
    def probability(self) -> float:
        return self.blocked / self.attempts if self.attempts else 0.0

    @property
    def mean_block_time_s(self) -> float:
        return self.total_block_time_s / self.blocked if self.blocked else 0.0

    def merge(self, other: "BlockingStats") -> None:
        self.attempts += other.attempts
        self.blocked += other.blocked
        self.total_block_time_s += other.total_block_time_s
        self.block_time.merge(other.block_time)


#: Blocking causes tracked separately.  GET_VV is Algorithm 2 line 2;
#: PUT_DEPS line 6; PUT_CLOCK line 7; SLICE_VV line 40; GSS_WAIT is the
#: pessimistic protocol waiting for stabilization to cover a client's
#: dependencies; DEP_CHECK is COPS* applying a replicated update only
#: after its explicit dependencies are locally satisfied.
BLOCK_GET_VV = "get_vv"
BLOCK_PUT_DEPS = "put_deps"
BLOCK_PUT_CLOCK = "put_clock"
BLOCK_SLICE_VV = "slice_vv"
BLOCK_GSS_WAIT = "gss_wait"
BLOCK_DEP_CHECK = "dep_check"

ALL_BLOCK_CAUSES = (
    BLOCK_GET_VV,
    BLOCK_PUT_DEPS,
    BLOCK_PUT_CLOCK,
    BLOCK_SLICE_VV,
    BLOCK_GSS_WAIT,
    BLOCK_DEP_CHECK,
)


class MetricsRegistry:
    """All measurements of one experiment run."""

    def __init__(self) -> None:
        self.enabled = False
        self.window_start_s = 0.0
        self.window_end_s = 0.0
        self.ops: dict[OpType, OpStats] = {t: OpStats() for t in OpType}
        self.blocking: dict[str, BlockingStats] = {
            cause: BlockingStats() for cause in ALL_BLOCK_CAUSES
        }
        #: Staleness of plain GET reads (Figure 2b).
        self.get_staleness = StalenessAggregate()
        #: Staleness of transactional reads (Figure 3d).
        self.tx_staleness = StalenessAggregate()
        #: GSS lag (local clock minus GSS entry) sampled by Cure* servers.
        self.gss_lag = LogHistogram()
        #: Update visibility latency: simulated time from an update's
        #: creation at its source replica to the instant a *remote* server
        #: lets reads observe it.  POCC records at receipt (optimistic
        #: visibility); Cure* when the GSS covers the version's commit
        #: vector; GentleRain* when the GST passes its timestamp.  This
        #: quantifies the freshness argument of Section I directly.
        self.visibility_lag = LogHistogram()
        #: Live-telemetry tap: a second histogram fed on *every*
        #: visibility sample, independent of the measurement window —
        #: ``/metrics`` endpoints scrape continuously, including during
        #: warmup, while ``visibility_lag`` above stays windowed for the
        #: report.  None (and free) outside the live backend.
        self.visibility_sink: LogHistogram | None = None
        #: Session-level events (HA-POCC).
        self.sessions_closed = 0
        self.sessions_demoted = 0
        self.sessions_promoted = 0

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def arm(self, now_s: float) -> None:
        """Start the measurement window."""
        self.enabled = True
        self.window_start_s = now_s

    def disarm(self, now_s: float) -> None:
        """Close the measurement window."""
        self.enabled = False
        self.window_end_s = now_s

    @property
    def window_duration_s(self) -> float:
        return max(self.window_end_s - self.window_start_s, 0.0)

    # ------------------------------------------------------------------
    # Recording (each checks the arm flag so callers stay branch-free)
    # ------------------------------------------------------------------
    def record_op(self, op_type: OpType, latency_s: float) -> None:
        if self.enabled:
            self.ops[op_type].record(latency_s)

    def record_block_attempt(self, cause: str) -> None:
        if self.enabled:
            self.blocking[cause].record_attempt()

    def record_block(self, cause: str, duration_s: float) -> None:
        if self.enabled:
            self.blocking[cause].record_block(duration_s)

    def record_block_started(
        self, cause: str, started_s: float, duration_s: float
    ) -> None:
        """Record a resolved stall, attributed to the window in which the
        blocking *attempt* happened.

        A stall that began before the window opened is dropped (its attempt
        was never counted, so counting the block would make the blocking
        probability exceed 1); one that began inside the window is counted
        even if it resolves after the window closes.
        """
        if self._started_in_window(started_s):
            self.blocking[cause].record_block(duration_s)

    def _started_in_window(self, started_s: float) -> bool:
        if started_s < self.window_start_s:
            return False
        return self.enabled or started_s < self.window_end_s

    def record_get_staleness(self, fresher: int, unmerged: int) -> None:
        if self.enabled:
            self.get_staleness.record(fresher, unmerged)

    def record_tx_staleness(self, fresher: int, unmerged: int) -> None:
        if self.enabled:
            self.tx_staleness.record(fresher, unmerged)

    def record_gss_lag(self, lag_s: float) -> None:
        if self.enabled and lag_s >= 0:
            self.gss_lag.record(lag_s)

    def record_visibility_lag(self, lag_s: float) -> None:
        sink = self.visibility_sink
        if sink is not None:
            sink.record(max(lag_s, 0.0))
        if self.enabled:
            self.visibility_lag.record(max(lag_s, 0.0))

    # ------------------------------------------------------------------
    # Derived results
    # ------------------------------------------------------------------
    def total_ops(self) -> int:
        return sum(stats.completed for stats in self.ops.values())

    def throughput_ops_s(self) -> float:
        duration = self.window_duration_s
        return self.total_ops() / duration if duration > 0 else 0.0

    def combined_blocking(self, causes: tuple[str, ...]) -> BlockingStats:
        """Aggregate blocking stats across the given causes."""
        combined = BlockingStats()
        for cause in causes:
            combined.merge(self.blocking[cause])
        return combined
