"""Property tests for PartitionStore.purge (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.store import PartitionStore
from repro.storage.version import Version

#: (key, ut, sr) triples; small domains force collisions and ties.
_versions = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=2),
    ),
    max_size=40,
)


def _build(triples):
    store = PartitionStore()
    seen = set()
    for key, ut, sr in triples:
        if (key, ut, sr) in seen:  # identities must stay unique
            continue
        seen.add((key, ut, sr))
        store.insert(Version(key=key, value=None, sr=sr, ut=ut, dv=(0, 0, 0)))
    return store


def _all_versions(store):
    out = []
    for key in store.keys():
        out.extend(store.chain(key))
    return out


@given(_versions, st.integers(min_value=0, max_value=50))
@settings(max_examples=60)
def test_purge_partitions_the_store(triples, threshold):
    store = _build(triples)
    before = {v.identity() for v in _all_versions(store)}
    removed = store.purge(lambda v: v.ut > threshold)
    after = {v.identity() for v in _all_versions(store)}
    removed_ids = {v.identity() for v in removed}

    # Removed and kept partition the original contents.
    assert removed_ids | after == before
    assert removed_ids & after == set()
    # Exactly the matching versions were removed.
    assert all(v.ut > threshold for v in removed)
    assert all(v.ut <= threshold for v in _all_versions(store))


@given(_versions, st.integers(min_value=0, max_value=50))
@settings(max_examples=60)
def test_purge_is_idempotent(triples, threshold):
    store = _build(triples)
    store.purge(lambda v: v.ut > threshold)
    assert store.purge(lambda v: v.ut > threshold) == []


@given(_versions, st.integers(min_value=0, max_value=50))
@settings(max_examples=60)
def test_purge_preserves_lww_order(triples, threshold):
    store = _build(triples)
    store.purge(lambda v: v.ut > threshold)
    for key in store.keys():
        orders = [v.order_key for v in store.chain(key)]
        assert orders == sorted(orders, reverse=True)
