"""The wire codec: length-prefixed frames for every protocol message.

Frame layout: a 4-byte big-endian payload length, then the payload.  The
payload is msgpack when the ``msgpack`` package is importable and compact
JSON otherwise — both encode the same tagged tree, so the choice only
affects bytes on the wire, never round-trip fidelity.  Every endpoint of
one deployment must use the same serializer (they share this module, so
they do); install the ``fast`` extra (``pip install occ-repro[fast]``) to
get msgpack.

Encoding is driven by the dataclass registry built from
:mod:`repro.protocols.messages`: a message becomes
``["@m", type_name, [field values…]]`` with field values encoded
recursively.  Python containers and the protocol's non-dataclass payload
types carry tags so decoding restores the *exact* original shape —
tuples stay tuples (dataclass equality depends on it), versions come back
as :class:`repro.storage.version.Version` or the COPS* subclass:

=========  ====================================================
tag        payload
=========  ====================================================
``@m``     message dataclass: name + field list
``@t``     tuple (elements encoded recursively)
``@l``     escape: a *plain list* whose first element is a
           string starting with ``@`` (kept unambiguous)
``@a``     :class:`repro.common.types.Address`
``@v``     :class:`repro.storage.version.Version`
``@cv``    :class:`repro.protocols.cops.CopsVersion`
=========  ====================================================

Scalars (``None``, ``bool``, ``int``, ``float``, ``str``) pass through
untouched; plain lists stay plain lists (escaped with ``@l`` only when
their head collides with the tag space).  Values stored by clients must
be built from these shapes (the workload generators' values are).

Two implementations produce that tree:

* the **reference tree codec** (:func:`dumps_reference` /
  :func:`loads_reference`) — the recursive type-dispatching walk above,
  kept as the executable specification;
* the **compiled codec** (:func:`dumps` / :func:`loads`) — one
  exec-generated encoder/decoder per registered message dataclass, with
  the field list resolved at import time and per-field fast paths chosen
  from the declared field types (int vectors pass through, addresses
  inline, nested messages dispatch straight to their own compiled
  codec).  Field values that do not match their declaration fall back to
  the tree walk, so the two implementations produce **byte-identical
  frames** for every encodable message — pinned property-based by
  ``tests/runtime/test_codec.py``.

:func:`encode_frame` memoizes the last frame it built (keyed by message
*identity*), so sizing a message and then sending it — or fanning one
payload out to many peers — serializes it exactly once.  The memo relies
on messages being immutable once handed to the transport, which every
protocol core honors.

``size_bytes()`` note: messages model their size as a *compact binary*
encoding of the paper's setup (8-byte keys/values/timestamps).  The live
codec's frames are larger (self-describing), so ``encoded_size()`` is the
transport truth while ``size_bytes()`` remains the metadata-overhead model
— the round-trip property test pins that ``size_bytes()`` survives a
round trip unchanged and the frame length matches what was written.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any

from repro.common.errors import ReproError
from repro.common.types import Address, NodeKind
from repro.protocols import messages
from repro.storage.version import Version

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack  # type: ignore

    def _pack(tree: Any) -> bytes:
        return msgpack.packb(tree, use_bin_type=True)

    def _unpack(payload: bytes) -> Any:
        return msgpack.unpackb(payload, raw=False)

    SERIALIZER = "msgpack"
except ImportError:
    def _pack(tree: Any) -> bytes:
        return json.dumps(tree, separators=(",", ":"),
                          ensure_ascii=False).encode("utf-8")

    # The bound scanner skips json.loads()'s isinstance/detect_encoding
    # dispatch and decode()'s whitespace regexes per call.  Our encoder
    # never emits surrounding whitespace, so the strict stdlib path only
    # runs for inputs the fast path cannot prove equivalent.
    _json_raw = json.JSONDecoder().raw_decode

    def _unpack(payload: bytes) -> Any:
        # str() accepts bytes, bytearray and the frame decoder's
        # memoryview slices alike — one copy into the text object.
        text = str(payload, "utf-8")
        try:
            tree, end = _json_raw(text)
        except ValueError:
            return json.loads(text)  # exact stdlib error semantics
        if end != len(text):
            return json.loads(text)  # tolerate surrounding whitespace
        return tree

    SERIALIZER = "json"


def serializer_note() -> str | None:
    """A human-readable warning when frames run on the slow fallback.

    The live CLIs print this at startup so a deployment that silently
    fell back to JSON (msgpack absent) is visible in its logs, and the
    BENCH snapshots record :data:`SERIALIZER` so the trajectory knows
    which serializer each number was measured under.
    """
    if SERIALIZER == "json":
        return ("msgpack is not installed: wire frames fall back to JSON "
                "(slower, larger); install the 'fast' extra "
                "(pip install 'occ-repro[fast]')")
    return None


_LEN = struct.Struct(">I")

#: Hard cap on one frame; anything larger is a corrupt length prefix.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def _message_dataclasses() -> dict[str, type]:
    """Every message dataclass defined in :mod:`repro.protocols.messages`."""
    found: dict[str, type] = {}
    for name in dir(messages):
        obj = getattr(messages, name)
        if (isinstance(obj, type) and dataclasses.is_dataclass(obj)
                and obj.__module__ == messages.__name__):
            found[name] = obj
    return found


#: name -> dataclass, the codec's message registry.
MESSAGE_TYPES: dict[str, type] = _message_dataclasses()

_FIELDS: dict[str, tuple[str, ...]] = {
    name: tuple(f.name for f in dataclasses.fields(cls))
    for name, cls in MESSAGE_TYPES.items()
}


class CodecError(ReproError):
    """Raised on malformed frames or unregistered payload types."""


# ----------------------------------------------------------------------
# Tree encoding (the reference implementation)
# ----------------------------------------------------------------------
def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        encoded = [_encode_value(item) for item in value]
        if encoded and isinstance(encoded[0], str) \
                and encoded[0].startswith("@"):
            # A client value like ["@t", ...] would otherwise be
            # indistinguishable from a tagged node: escape it.
            return ["@l", *encoded]
        return encoded
    if isinstance(value, tuple):
        return ["@t", *(_encode_value(item) for item in value)]
    if isinstance(value, Address):
        return ["@a", value.dc, value.partition, value.kind.value,
                value.index]
    if isinstance(value, Version):
        deps = getattr(value, "deps", None)
        if deps is not None:  # CopsVersion: dependency list + visibility
            return ["@cv", value.key, _encode_value(value.value), value.sr,
                    value.ut, len(value.dv),
                    [_encode_value(dep) for dep in deps],
                    bool(value.visible)]
        return ["@v", value.key, _encode_value(value.value), value.sr,
                value.ut, [int(x) for x in value.dv],
                bool(value.optimistic)]
    cls_name = type(value).__name__
    fields = _FIELDS.get(cls_name)
    if fields is not None and isinstance(value, MESSAGE_TYPES[cls_name]):
        return ["@m", cls_name,
                [_encode_value(getattr(value, f)) for f in fields]]
    raise CodecError(f"cannot encode {type(value).__name__}: {value!r}")


def _decode_value(tree: Any) -> Any:
    if tree is None or isinstance(tree, (bool, int, float, str)):
        return tree
    if not isinstance(tree, list):
        raise CodecError(f"malformed wire tree: {tree!r}")
    if not tree or not isinstance(tree[0], str) or not tree[0].startswith("@"):
        return [_decode_value(item) for item in tree]
    tag = tree[0]
    if tag == "@l":  # escaped plain list whose head looked like a tag
        return [_decode_value(item) for item in tree[1:]]
    if tag == "@t":
        return tuple(_decode_value(item) for item in tree[1:])
    if tag == "@a":
        _, dc, partition, kind, index = tree
        return Address(dc=dc, partition=partition, kind=NodeKind(kind),
                       index=index)
    if tag == "@v":
        _, key, value, sr, ut, dv, optimistic = tree
        return Version(key=key, value=_decode_value(value), sr=sr, ut=ut,
                       dv=tuple(dv), optimistic=optimistic)
    if tag == "@cv":
        from repro.protocols.cops import CopsVersion
        _, key, value, sr, ut, num_dcs, deps, visible = tree
        return CopsVersion(key=key, value=_decode_value(value), sr=sr,
                           ut=ut, num_dcs=num_dcs,
                           deps=[_decode_value(dep) for dep in deps],
                           visible=visible)
    if tag == "@m":
        _, name, values = tree
        cls = MESSAGE_TYPES.get(name)
        if cls is None:
            raise CodecError(f"unknown message type on the wire: {name!r}")
        fields = _FIELDS[name]
        if len(values) != len(fields):
            raise CodecError(
                f"{name}: expected {len(fields)} fields, got {len(values)}"
            )
        return cls(**{f: _decode_value(v) for f, v in zip(fields, values)})
    raise CodecError(f"unknown wire tag {tag!r}")


# ----------------------------------------------------------------------
# Compiled per-dataclass codecs
#
# Every helper below is *total*: when a field value does not look like
# its declaration promised, it falls back to the reference walk on the
# whole value, so compiled output can never diverge from the tree codec
# on anything the tree codec accepts.
# ----------------------------------------------------------------------
def _enc_ivec(value: Any) -> Any:
    # list[Micros]: a plain list of ints passes through the tree codec
    # untouched (an int head can never collide with the tag space).
    if type(value) is list:
        for item in value:
            if type(item) is not int:
                return _encode_value(value)
        return value
    return _encode_value(value)


def _enc_ituple(value: Any) -> Any:
    if type(value) is tuple:
        for item in value:
            if type(item) is not int:
                return _encode_value(value)
        return ["@t", *value]
    return _encode_value(value)


def _enc_stuple(value: Any) -> Any:
    if type(value) is tuple:
        for item in value:
            if type(item) is not str:
                return _encode_value(value)
        return ["@t", *value]
    return _encode_value(value)


def _enc_address(value: Any) -> Any:
    if type(value) is Address:
        return ["@a", value.dc, value.partition, value.kind.value,
                value.index]
    return _encode_value(value)


def _enc_message(value: Any) -> Any:
    enc = _ENCODERS.get(type(value))
    return enc(value) if enc is not None else _encode_value(value)


def _enc_version(value: Any) -> Any:
    if isinstance(value, Version):
        deps = getattr(value, "deps", None)
        if deps is not None:
            return ["@cv", value.key, _encode_value(value.value), value.sr,
                    value.ut, len(value.dv),
                    [_enc_message(dep) for dep in deps],
                    bool(value.visible)]
        return ["@v", value.key, _encode_value(value.value), value.sr,
                value.ut, [int(x) for x in value.dv],
                bool(value.optimistic)]
    return _encode_value(value)


def _enc_msglist(value: Any) -> Any:
    if type(value) is list:
        out = []
        for item in value:
            enc = _ENCODERS.get(type(item))
            if enc is None:
                return _encode_value(value)
            out.append(enc(item))
        return out
    return _encode_value(value)


def _enc_version_list(value: Any) -> Any:
    if type(value) is list:
        out = []
        for item in value:
            if isinstance(item, Version):
                out.append(_enc_version(item))
            else:
                return _encode_value(value)
        return out
    return _encode_value(value)


def _enc_dep_tuple(value: Any) -> Any:
    if type(value) is tuple:
        out: list[Any] = ["@t"]
        for item in value:
            enc = _ENCODERS.get(type(item))
            if enc is None:
                return _encode_value(value)
            out.append(enc(item))
        return out
    return _encode_value(value)


def _dec_ivec(tree: Any) -> Any:
    if type(tree) is list:
        for item in tree:
            if type(item) is not int:
                return _decode_value(tree)
        return tree
    return _decode_value(tree)


def _dec_ituple(tree: Any) -> Any:
    if type(tree) is list and tree and tree[0] == "@t":
        items = tree[1:]
        for item in items:
            if type(item) is not int:
                return _decode_value(tree)
        return tuple(items)
    return _decode_value(tree)


def _dec_stuple(tree: Any) -> Any:
    if type(tree) is list and tree and tree[0] == "@t":
        items = tree[1:]
        for item in items:
            if type(item) is not str:
                return _decode_value(tree)
        return tuple(items)
    return _decode_value(tree)


#: Decoded-address intern table.  The address universe is bounded by the
#: cluster size, every Address is immutable, and equal addresses are
#: interchangeable everywhere (compared by value, hashed by value), so
#: the hot decode path reuses one instance per wire identity instead of
#: re-running the dataclass constructor and the NodeKind enum call on
#: every message.
_ADDRESS_INTERN: dict[tuple, Address] = {}


def _dec_address(tree: Any) -> Any:
    if type(tree) is list and len(tree) == 5 and tree[0] == "@a":
        key = (tree[1], tree[2], tree[3], tree[4])
        addr = _ADDRESS_INTERN.get(key)
        if addr is None:
            addr = _ADDRESS_INTERN[key] = Address(
                dc=tree[1], partition=tree[2], kind=NodeKind(tree[3]),
                index=tree[4])
        return addr
    return _decode_value(tree)


def _dec_message(tree: Any) -> Any:
    if type(tree) is list and len(tree) == 3 and tree[0] == "@m":
        dec = _DECODERS.get(tree[1])
        if dec is not None:
            return dec(tree[2])
    return _decode_value(tree)


def _dec_version(tree: Any) -> Any:
    if type(tree) is list and tree:
        tag = tree[0]
        if tag == "@v" and len(tree) == 7:
            return Version(key=tree[1], value=_decode_value(tree[2]),
                           sr=tree[3], ut=tree[4], dv=tuple(tree[5]),
                           optimistic=tree[6])
        if tag == "@cv" and len(tree) == 8:
            from repro.protocols.cops import CopsVersion
            return CopsVersion(key=tree[1], value=_decode_value(tree[2]),
                               sr=tree[3], ut=tree[4], num_dcs=tree[5],
                               deps=[_dec_message(dep) for dep in tree[6]],
                               visible=tree[7])
    return _decode_value(tree)


def _headed_by_tag(tree: list) -> bool:
    return bool(tree) and type(tree[0]) is str and tree[0].startswith("@")


def _dec_msglist(tree: Any) -> Any:
    if type(tree) is list and not _headed_by_tag(tree):
        return [_dec_message(item) for item in tree]
    return _decode_value(tree)


def _dec_version_list(tree: Any) -> Any:
    if type(tree) is list and not _headed_by_tag(tree):
        return [_dec_version(item) for item in tree]
    return _decode_value(tree)


def _dec_dep_tuple(tree: Any) -> Any:
    if type(tree) is list and tree and tree[0] == "@t":
        return tuple(_dec_message(item) for item in tree[1:])
    return _decode_value(tree)


#: Declared field type -> (field encoder, field decoder).  ``None`` means
#: the value passes through untouched in both directions (scalars).  Any
#: annotation not listed here takes the full reference walk.
_FIELD_CODECS: dict[str, tuple[Any, Any] | None] = {
    "str": None,
    "int": None,
    "bool": None,
    "float": None,
    "Micros": None,
    "ReplicaId": None,
    "Address": (_enc_address, _dec_address),
    "Version": (_enc_version, _dec_version),
    "list[Micros]": (_enc_ivec, _dec_ivec),
    "tuple[Micros, ...]": (_enc_ituple, _dec_ituple),
    "tuple[str, ...]": (_enc_stuple, _dec_stuple),
    "list[GetReply]": (_enc_msglist, _dec_msglist),
    "list[Version]": (_enc_version_list, _dec_version_list),
    "tuple[Dependency, ...]": (_enc_dep_tuple, _dec_dep_tuple),
}


def _compile_codecs() -> tuple[dict[type, Any], dict[str, Any]]:
    """Build one encoder and one decoder function per message dataclass.

    The generated source inlines the field list positionally — no
    ``getattr`` loop, no keyword-dict construction — and binds each
    non-scalar field to its fast-path helper.  Example (``GetReq``)::

        def _enc(m):
            return ["@m", "GetReq",
                    [m.key, _e1(m.rdv), _e2(m.client), m.op_id,
                     m.pessimistic]]
        def _dec(v):
            if len(v) != 5: raise CodecError(...)
            return _cls(v[0], _d1(v[1]), _d2(v[2]), v[3], v[4])
    """
    encoders: dict[type, Any] = {}
    decoders: dict[str, Any] = {}
    for name, cls in MESSAGE_TYPES.items():
        fields = dataclasses.fields(cls)
        ns: dict[str, Any] = {"_cls": cls, "CodecError": CodecError,
                              "_ev": _encode_value, "_dv": _decode_value}
        enc_parts, dec_parts = [], []
        for i, f in enumerate(fields):
            pair = _FIELD_CODECS.get(f.type, (_encode_value, _decode_value))
            if pair is None:  # declared scalar: passes through untouched
                enc_parts.append(f"m.{f.name}")
                dec_parts.append(f"v[{i}]")
            else:
                ns[f"_e{i}"], ns[f"_d{i}"] = pair
                enc_parts.append(f"_e{i}(m.{f.name})")
                dec_parts.append(f"_d{i}(v[{i}])")
        count = len(fields)
        # Bind every helper as a default argument: the generated bodies
        # then hit fast locals instead of namespace lookups per frame.
        bound = ", ".join(f"{key}={key}" for key in ns)
        src = (
            f"def _enc(m, {bound}):\n"
            f"    return ['@m', {name!r}, [{', '.join(enc_parts)}]]\n"
            f"def _dec(v, {bound}):\n"
            f"    if len(v) != {count}:\n"
            f"        raise CodecError(\n"
            f"            '{name}: expected {count} fields, got %d'\n"
            f"            % len(v))\n"
            f"    return _cls({', '.join(dec_parts)})\n"
        )
        exec(src, ns)  # noqa: S102 - source is assembled from literals
        encoders[cls] = ns["_enc"]
        decoders[name] = ns["_dec"]
    return encoders, decoders


_ENCODERS, _DECODERS = _compile_codecs()


def compiled_message_types() -> set[str]:
    """Names of the message types with a compiled encoder+decoder."""
    return set(_DECODERS)


# ----------------------------------------------------------------------
# Payload API (no length prefix)
# ----------------------------------------------------------------------
def dumps(msg: Any) -> bytes:
    """Serialize one message to its payload bytes (compiled fast path)."""
    enc = _ENCODERS.get(type(msg))
    if enc is not None:
        return _pack(enc(msg))
    return _pack(_encode_value(msg))


def loads(payload: bytes) -> Any:
    """The inverse of :func:`dumps`."""
    try:
        tree = _unpack(payload)
    except Exception as exc:
        # The serializer's own failure modes (msgpack unpack errors,
        # json decode errors) are stream corruption to every caller.
        raise CodecError(f"undecodable payload: {exc}") from exc
    return _dec_message(tree)


def dumps_reference(msg: Any) -> bytes:
    """The reference tree walk, bypassing every compiled codec.

    The executable specification the compiled encoders are pinned
    byte-identical to (``tests/runtime/test_codec.py``).
    """
    return _pack(_encode_value(msg))


def loads_reference(payload: bytes) -> Any:
    """The reference tree decode, bypassing every compiled codec."""
    try:
        tree = _unpack(payload)
    except Exception as exc:
        raise CodecError(f"undecodable payload: {exc}") from exc
    return _decode_value(tree)


# ----------------------------------------------------------------------
# Frame API (length-prefixed, what the TCP transport and the WAL ship)
# ----------------------------------------------------------------------
#: One-slot frame memo: the last (message, frame) pair built.  Keyed by
#: object identity — the strong reference keeps ``is`` checks safe — so
#: ``encoded_size(msg)`` followed by ``encode_frame(msg)``, or one
#: payload fanned out to many destinations, serializes exactly once.
#: Relies on messages being immutable once handed over (they are; the
#: one mutable payload, COPS*'s ``visible`` flag, is always re-wrapped
#: in a fresh record tuple before re-encoding).
_FRAME_MEMO: tuple[Any, bytes] | None = None


def encode_frame(msg: Any) -> bytes:
    """One wire frame: 4-byte big-endian payload length + payload."""
    global _FRAME_MEMO
    memo = _FRAME_MEMO
    if memo is not None and memo[0] is msg:
        return memo[1]
    payload = dumps(msg)
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(payload)} bytes exceeds the cap")
    frame = _LEN.pack(len(payload)) + payload
    _FRAME_MEMO = (msg, frame)
    return frame


def encoded_size(msg: Any) -> int:
    """Total frame bytes :func:`encode_frame` would produce.

    Shares :func:`encode_frame`'s memo: sizing a message primes the
    cache, so the send that follows does not serialize it again.
    """
    return len(encode_frame(msg))


class FrameDecoder:
    """Incremental frame parser for a TCP byte stream or a WAL file.

    Agnostic to transport batching: a sender may coalesce many frames
    into one ``write`` (see :mod:`repro.runtime.transport`), but the
    stream is still just concatenated length-prefixed frames, and
    :meth:`feed` returns every message a chunk completes regardless of
    how the bytes were grouped on the way in.

    Two failure shapes are kept apart, because their meanings differ:

    * an **incomplete trailing frame** — the stream simply ended (or has
      not yet delivered) mid-frame.  Not an error: :meth:`feed` returns
      the complete messages, :attr:`pending_bytes` is positive, and
      :attr:`consumed_bytes` is the *clean boundary*: the stream offset
      just past the last fully decoded frame.  WAL recovery truncates a
      torn tail exactly there; the live transport counts an
      abruptly-closed connection's partial frame instead of mistaking it
      for corruption.
    * **corruption** — a length prefix beyond :data:`MAX_FRAME_BYTES` or
      a *complete* frame whose payload does not decode.  :meth:`feed`
      raises :class:`CodecError` and leaves :attr:`consumed_bytes` at the
      boundary *before* the offending frame, so the caller can report
      where the stream went bad.
    """

    __slots__ = ("_buffer", "_consumed")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._consumed = 0

    def feed(self, data: bytes) -> list[Any]:
        """Absorb ``data``; return every message completed by it.

        Eager on purpose: the bytes are buffered and parsed before this
        returns, so a caller that drops the result has still advanced the
        stream (a lazy generator would silently skip the chunk unless
        iterated, corrupting the framing of everything after it).
        """
        buffer = self._buffer
        buffer.extend(data)
        out: list[Any] = []
        append = out.append
        header = _LEN.size
        unpack_from = _LEN.unpack_from
        unpack_payload = _unpack
        dec_message = _dec_message
        size = len(buffer)
        pos = 0
        view = memoryview(buffer)
        try:
            while size - pos >= header:
                (length,) = unpack_from(buffer, pos)
                if length > MAX_FRAME_BYTES:
                    raise CodecError(
                        f"frame length {length} exceeds the cap "
                        "(corrupt stream?)"
                    )
                end = pos + header + length
                if size < end:
                    break
                # Decode before advancing: a corrupt complete frame must
                # not move the clean boundary past its own start.  The
                # payload is a zero-copy view into the buffer; decoders
                # materialize fresh objects, so nothing outlives the
                # loop.  This is loads() unrolled — the per-frame
                # wrapper call matters at batched-chunk frame rates.
                try:
                    tree = unpack_payload(view[pos + header:end])
                except Exception as exc:
                    raise CodecError(
                        f"undecodable payload: {exc}") from exc
                append(dec_message(tree))
                pos = end
        finally:
            view.release()
            if pos:
                self._consumed += pos
                try:
                    # One compaction per feed (a read-offset cursor walks
                    # the frames above), not one memmove per frame.
                    del buffer[:pos]
                except BufferError:
                    # A propagating decode error keeps its payload view
                    # alive through the exception traceback; the exported
                    # buffer cannot shrink, so hand it to the traceback
                    # and re-buffer the unconsumed tail.
                    self._buffer = bytearray(buffer[pos:])
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    @property
    def consumed_bytes(self) -> int:
        """Stream offset just past the last fully decoded frame.

        ``consumed_bytes + pending_bytes`` equals the total bytes fed.
        """
        return self._consumed
