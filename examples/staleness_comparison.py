#!/usr/bin/env python3
"""Freshness vs pessimism: sweep the load and watch the gap grow.

Reproduces the essence of the paper's Figures 2a/2b side by side: as load
increases, Cure* returns more and more old/unmerged items (its
stabilization protocol falls behind), while POCC keeps returning chain
heads and pays only a tiny, rare blocking cost.

Run:  python examples/staleness_comparison.py
"""

import dataclasses

from repro import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
    run_experiment,
)

CLIENT_SWEEP = (4, 12, 24, 40)


def main() -> None:
    base = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=4,
                              keys_per_partition=300, protocol="pocc"),
        workload=WorkloadConfig(kind="get_put", gets_per_put=4,
                                clients_per_partition=4,
                                think_time_s=0.010),
        warmup_s=0.5,
        duration_s=2.0,
    )

    header = (f"{'clients':>8} {'throughput':>12} | "
              f"{'POCC old%':>10} {'block p':>10} {'stall ms':>9} | "
              f"{'Cure old%':>10} {'unmerged%':>10} {'GSS lag ms':>11}")
    print(header)
    print("-" * len(header))

    for clients in CLIENT_SWEEP:
        row = {}
        for protocol in ("pocc", "cure"):
            config = dataclasses.replace(
                base,
                cluster=base.cluster.with_protocol(protocol),
                workload=dataclasses.replace(
                    base.workload, clients_per_partition=clients,
                ),
                name=f"staleness-{protocol}-{clients}",
            )
            row[protocol] = run_experiment(config)
        pocc, cure = row["pocc"], row["cure"]
        print(f"{clients:>8} {pocc.throughput_ops_s:>12,.0f} | "
              f"{pocc.get_staleness['pct_old']:>10.3f} "
              f"{pocc.blocking_probability:>10.2e} "
              f"{pocc.mean_block_time_s * 1000:>9.3f} | "
              f"{cure.get_staleness['pct_old']:>10.3f} "
              f"{cure.get_staleness['pct_unmerged']:>10.3f} "
              f"{cure.gss_lag['mean'] * 1000:>11.1f}")

    print()
    print("POCC never returns an old GET (it always serves the chain head);")
    print("Cure*'s staleness grows with load as stabilization lags.")


if __name__ == "__main__":
    main()
