"""``repro-bench-live``: drive a live cluster and verify its history.

The live-mode smoke experiment: boots an N-DC × M-partition cluster
(in-process by default, or dials servers booted elsewhere with
``--external-servers``), drives it with the seeded closed-loop workload
generators for a wall-clock measurement window, runs the independent
causal-consistency checker over the recorded operation history, and
exits non-zero on any violation, transport error or unclean shutdown —
the CI ``live-smoke`` gate.

Examples::

    # Everything in one process, ephemeral ports, 10s of POCC:
    repro-bench-live --protocol pocc --dcs 2 --partitions 2 \
        --duration 10 --base-port 0

    # Drive servers that a repro-serve process already hosts:
    repro-bench-live --config cluster.json --external-servers --duration 10
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import sys

from repro.runtime.cli import (
    add_deployment_args,
    config_from_args,
    warn_slow_serializer,
)
from repro.runtime.cluster import LiveCluster
from repro.runtime.loops import install_event_loop


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench-live",
        description="Drive a live causal key-value cluster with the paper's "
                    "workloads and verify the recorded history.",
    )
    add_deployment_args(parser)
    parser.add_argument("--duration", type=float, default=10.0, metavar="S",
                        help="measurement window in wall-clock seconds "
                             "(default: 10)")
    parser.add_argument("--warmup", type=float, default=None, metavar="S",
                        help="warmup before the window (default: config)")
    parser.add_argument("--external-servers", action="store_true",
                        help="host no servers here; dial the port map "
                             "(servers run under repro-serve or "
                             "repro-supervise)")
    parser.add_argument("--driver-processes", type=int, default=1,
                        metavar="N",
                        help="shard the client sessions across N load "
                             "worker processes (default: 1 = everything "
                             "in this process; N>1 needs a fixed "
                             "--base-port)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the report as JSON to PATH")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the verdict line")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    warn_slow_serializer()
    config = config_from_args(args)
    overrides = {"verify": True, "duration_s": args.duration}
    if args.warmup is not None:
        overrides["warmup_s"] = args.warmup
    config = dataclasses.replace(config, **overrides)
    config.validate()

    install_event_loop(config.cluster.transport.event_loop)
    if args.driver_processes > 1:
        from repro.runtime.loadgen import run_sharded_load
        sharded = run_sharded_load(
            config,
            host=args.host,
            base_port=args.base_port,
            processes=args.driver_processes,
            external_servers=args.external_servers,
        )
        report = sharded.report
        if not args.quiet:
            print(f"driver processes: {sharded.driver_processes} "
                  f"(servers {'external' if not sharded.hosted_servers else 'in-parent'})",
                  file=sys.stderr)
    else:
        cluster = LiveCluster(
            config,
            host=args.host,
            base_port=args.base_port,
            serve_addresses=([] if args.external_servers else None),
        )
        report = asyncio.run(cluster.run())

    if args.quiet:
        print(report.summary_text().splitlines()[0])
    else:
        print(report.summary_text())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(dataclasses.asdict(report), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
