"""Multi-process load generation for the live backend.

A single Python process tops out well below what the servers can absorb:
the GIL serialises every client coroutine, the JSON/msgpack codec and
the checker onto one core.  This module shards the *exact* client set a
single-process run would host across N worker processes — worker ``i``
hosts the client sessions whose deterministic position ``% N == i``
(see ``LiveCluster(client_shard=...)``) — so the sharded workload is the
unsharded workload, split.  Same client addresses, same per-address
workload/driver seeds, same port map.

Each worker runs a client-only :class:`LiveCluster` against external
servers (hosted by this process, by ``repro-serve`` processes, or by a
``repro-supervise`` tree), measures its own window, and ships back its
:class:`LiveReport` plus its raw per-kind latency histograms.  The
parent merges: ops and transport counters sum, throughput sums (each
worker's window is the same wall-clock span, started together),
histograms fold with :meth:`LogHistogram.merge` so the merged
percentiles are exact, verification counters sum, and the gate is the
conjunction — one dirty worker fails the run.

Cross-worker reads: each worker's checker sees only its shard's writes,
so a read returning another shard's version counts as an
``unknown_dependency_reads`` (a coverage counter, never a violation);
per-key causality within each session is still fully checked.

Workers are spawned (not forked): a fork would duplicate the parent's
running event loop and sockets.  That also means the deployment must use
a fixed ``base_port`` — every process derives the same port map
independently, nothing is coordinated at runtime.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.common.config import ExperimentConfig
from repro.common.errors import ConfigError
from repro.metrics.histogram import LogHistogram
from repro.runtime.cluster import LiveCluster, LiveReport
from repro.runtime.configfile import (
    experiment_config_from_dict,
    experiment_config_to_dict,
)
from repro.runtime.loops import install_event_loop


@dataclass(slots=True)
class WorkerResult:
    """What one load worker ships back to the parent (picklable)."""

    index: int
    pid: int
    report: LiveReport
    #: Raw mergeable per-kind histograms — the parent folds these, so
    #: merged percentiles are exact, not averages of percentiles.
    histograms: dict[str, LogHistogram]


def _worker_main(config_data: dict[str, Any], host: str, base_port: int,
                 index: int, total: int) -> WorkerResult:
    """Entry point of one spawned load worker (module-level: spawn
    pickles the reference, not the function)."""
    config = experiment_config_from_dict(config_data)
    install_event_loop(config.cluster.transport.event_loop)
    cluster = LiveCluster(
        config,
        host=host,
        base_port=base_port,
        serve_addresses=[],            # clients only; servers run elsewhere
        client_shard=(index, total),
    )
    report = asyncio.run(cluster.run())
    return WorkerResult(
        index=index,
        pid=os.getpid(),
        report=report,
        histograms=cluster.merged_latency_histograms(),
    )


def _total_client_sessions(config: ExperimentConfig) -> int:
    cluster = config.cluster
    return (cluster.num_dcs * cluster.num_partitions
            * config.workload.clients_per_partition)


def _summarize(merged: dict[str, LogHistogram]) -> dict[str, dict]:
    overall = LogHistogram()
    for hist in merged.values():
        overall.merge(hist)
    out = dict(merged)
    if overall.count:
        out["all"] = overall
    return {
        kind: {
            "count": hist.count,
            "mean": hist.mean,
            "p50": hist.percentile(50),
            "p90": hist.percentile(90),
            "p99": hist.percentile(99),
            "max": hist.max_seen,
        }
        for kind, hist in out.items()
    }


def merge_worker_reports(results: list[WorkerResult],
                         extra_errors: list[str] | None = None,
                         clean_servers: bool = True) -> LiveReport:
    """Fold worker shards into one :class:`LiveReport`.

    Counters sum; throughput sums (the workers measured concurrent
    same-length windows); latency percentiles come from merged raw
    histograms; the verdict is the conjunction of every worker's.
    """
    if not results:
        raise ConfigError("no worker results to merge")
    reports = [r.report for r in results]
    merged_hists: dict[str, LogHistogram] = {}
    for result in results:
        for kind, hist in result.histograms.items():
            into = merged_hists.get(kind)
            if into is None:
                merged_hists[kind] = into = LogHistogram()
            into.merge(hist)
    verification: dict[str, int] = {}
    for report in reports:
        for key, value in report.verification.items():
            verification[key] = verification.get(key, 0) + value
    violations = [v for report in reports for v in report.violations]
    errors = [f"worker {r.index} (pid {r.pid}): {e}"
              for r in results for e in r.report.errors]
    errors.extend(extra_errors or [])
    faults: dict = {}
    for report in reports:
        for key, value in report.faults.items():
            if isinstance(value, dict):
                into = faults.setdefault(key, {})
                for kind, count in value.items():
                    into[kind] = into.get(kind, 0) + count
            else:
                faults[key] = faults.get(key, 0) + value
    first = reports[0]
    return LiveReport(
        protocol=first.protocol,
        num_dcs=first.num_dcs,
        num_partitions=first.num_partitions,
        serializer=first.serializer,
        duration_s=max(r.duration_s for r in reports),
        total_ops=sum(r.total_ops for r in reports),
        throughput_ops_s=sum(r.throughput_ops_s for r in reports),
        # Per-kind op summaries cannot be merged from summaries; the
        # driver-side ``latency`` block (merged from raw histograms) is
        # the authoritative per-kind view of a sharded run.
        op_stats={},
        verification=verification,
        violations=violations,
        history_events=sum(r.history_events for r in reports),
        messages_sent=sum(r.messages_sent for r in reports),
        messages_delivered=sum(r.messages_delivered for r in reports),
        bytes_sent=sum(r.bytes_sent for r in reports),
        clean_shutdown=(all(r.clean_shutdown for r in reports)
                        and clean_servers),
        arrival=first.arrival,
        latency=_summarize(merged_hists),
        dropped_arrivals=sum(r.dropped_arrivals for r in reports),
        # Worker shards host no servers, so no visibility samples exist
        # to merge; the explicit marker keeps "not measured" distinct
        # from "zero latency" for bench consumers.
        visibility={"samples": 0},
        faults=faults,
        batches_sent=sum(r.batches_sent for r in reports),
        batched_frames=sum(r.batched_frames for r in reports),
        errors=errors,
        event_loop=first.event_loop,
        cpu_count=os.cpu_count() or 0,
        cpu_affinity=(sorted(os.sched_getaffinity(0))
                      if hasattr(os, "sched_getaffinity") else []),
    )


@dataclass(slots=True)
class ShardedRunResult:
    """A merged report plus the per-worker shards behind it."""

    report: LiveReport
    worker_reports: list[LiveReport] = field(default_factory=list)
    driver_processes: int = 0
    #: True when this process hosted the servers (no external cluster).
    hosted_servers: bool = False


async def _run_sharded(config: ExperimentConfig, host: str, base_port: int,
                       processes: int,
                       external_servers: bool) -> ShardedRunResult:
    servers: LiveCluster | None = None
    server_errors: list[str] = []
    clean_servers = True
    if not external_servers:
        servers = LiveCluster(config, host=host, base_port=base_port,
                              serve_addresses=None, with_clients=False)
        await servers.start()
    loop = asyncio.get_running_loop()
    payload = experiment_config_to_dict(config)
    context = multiprocessing.get_context("spawn")
    try:
        with ProcessPoolExecutor(max_workers=processes,
                                 mp_context=context) as pool:
            futures = [
                loop.run_in_executor(
                    pool, _worker_main, payload, host, base_port,
                    index, processes,
                )
                for index in range(processes)
            ]
            results = list(await asyncio.gather(*futures))
    finally:
        if servers is not None:
            clean_servers = servers.flush_persistence()
            await servers.stop_telemetry()
            await servers.hub.close()
            servers.close_persistence()
            clean_servers = clean_servers and servers.hub.clean
            server_errors = [f"server host: {e}" for e in servers.hub.errors]
    merged = merge_worker_reports(results, extra_errors=server_errors,
                                  clean_servers=clean_servers)
    return ShardedRunResult(
        report=merged,
        worker_reports=[r.report for r in results],
        driver_processes=processes,
        hosted_servers=servers is not None,
    )


def run_sharded_load(
    config: ExperimentConfig,
    host: str = "127.0.0.1",
    base_port: int = 7400,
    processes: int = 2,
    external_servers: bool = False,
) -> ShardedRunResult:
    """Drive a live cluster with ``processes`` load worker processes.

    Servers are hosted in this process unless ``external_servers`` (then
    the deployment's ``repro-serve``/``repro-supervise`` tree must
    already be listening on the shared port map).  ``processes`` is
    clamped to the number of client sessions — an idle shard would have
    no drivers to run.
    """
    if processes < 1:
        raise ConfigError(f"processes must be >= 1, not {processes}")
    if base_port == 0:
        raise ConfigError(
            "multi-process load generation needs a fixed --base-port: "
            "every worker derives the shared port map independently, "
            "which ephemeral ports cannot provide"
        )
    sessions = _total_client_sessions(config)
    processes = min(processes, sessions)
    return asyncio.run(
        _run_sharded(config, host, base_port, processes, external_servers)
    )
