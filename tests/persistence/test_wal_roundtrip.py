"""Property suite: WAL prefix-replay equivalence under torn tails.

The durability contract, stated as a property: write a random sequence
of put/replication records, cut the log at *every* byte offset (a crash
can stop the disk mid-anything), recover — and the recovered state must
equal replaying exactly the records whose frames fit wholly below the
cut.  Nothing more (no half-record ever surfaces), nothing less (no
whole record below the cut is dropped), and a second recovery after the
physical truncation must agree with the first.
"""

import shutil

from hypothesis import given, settings, strategies as st

from repro.persistence.manager import recover_directory
from repro.persistence.wal import WriteAheadLog, list_segments
from repro.runtime import codec
from repro.storage.version import Version

keys = st.text(alphabet="abcdef", min_size=1, max_size=4)
values = st.one_of(
    st.integers(-2**30, 2**30),
    st.text(max_size=6),
    st.tuples(st.text(max_size=6), st.integers(0, 2**20)),
)


@st.composite
def version_sequences(draw):
    """Random interleavings of local puts (sr=0) and replications (sr>0),
    with strictly increasing update times per source (as in the protocol)."""
    num_dcs = draw(st.integers(2, 4))
    count = draw(st.integers(1, 12))
    next_ut = [1] * num_dcs
    out = []
    for _ in range(count):
        sr = draw(st.integers(0, num_dcs - 1))
        ut = next_ut[sr]
        next_ut[sr] += draw(st.integers(1, 5))
        out.append(Version(
            key=draw(keys), value=draw(values), sr=sr, ut=ut,
            dv=tuple(draw(st.integers(0, 50)) for _ in range(num_dcs)),
        ))
    return out


def write_wal(directory, versions) -> bytes:
    wal = WriteAheadLog(directory, fsync="always")
    header_bytes = wal.path.stat().st_size
    for version in versions:
        wal.append_version(version)
    wal.close()
    return wal.path.read_bytes(), header_bytes


def prefix_replay(versions, stream, cut, header_bytes) -> dict:
    """Identity -> version for the records wholly below ``cut``."""
    expected = {}
    offset = header_bytes
    for version in versions:
        size = codec.encoded_size(("v", version))
        if offset + size > cut:
            break
        offset += size
        expected[version.identity()] = version
    return expected


@settings(max_examples=25, deadline=None)
@given(versions=version_sequences(), data=st.data())
def test_recovery_equals_prefix_replay_at_every_cut(tmp_path_factory,
                                                    versions, data):
    base = tmp_path_factory.mktemp("wal-prop")
    master = base / "master"
    stream, header_bytes = write_wal(master, versions)
    (seq, master_segment), = list_segments(master)

    # Every byte offset from "header only" to "nothing torn".
    for cut in range(header_bytes, len(stream) + 1):
        work = base / f"cut{cut}"
        work.mkdir()
        shutil.copy(master_segment, work / master_segment.name)
        torn = work / master_segment.name
        torn.write_bytes(stream[:cut])

        state = recover_directory(work)
        expected = prefix_replay(versions, stream, cut, header_bytes)
        got = {v.identity(): v for v in state.versions}
        assert set(got) == set(expected), f"cut at byte {cut}"
        for identity, version in expected.items():
            recovered = got[identity]
            assert recovered.value == version.value
            assert recovered.dv == version.dv
        assert state.torn_bytes_truncated == \
            (cut - header_bytes
             - sum(codec.encoded_size(("v", v))
                   for v in expected.values())), f"cut at byte {cut}"

        # Idempotence: recovery after physical truncation agrees.
        again = recover_directory(work)
        assert {v.identity() for v in again.versions} == set(expected)
        assert again.torn_bytes_truncated == 0
        shutil.rmtree(work)


@settings(max_examples=15, deadline=None)
@given(versions=version_sequences(), data=st.data())
def test_batched_records_recover_like_singles_at_every_cut(
        tmp_path_factory, versions, data):
    """Group commit writes whole batches with one ``append_many``; on
    disk that is just concatenated frames, so the prefix-replay property
    must hold at every byte cut exactly as for per-record appends — a
    torn *batch* loses its tail records individually, never poisons the
    records before the tear."""
    base = tmp_path_factory.mktemp("wal-batched")
    master = base / "master"
    wal = WriteAheadLog(master, fsync="always")
    header_bytes = wal.path.stat().st_size
    remaining = list(versions)
    while remaining:
        take = data.draw(st.integers(1, len(remaining)))
        batch, remaining = remaining[:take], remaining[take:]
        wal.append_many([codec.encode_frame(("v", v)) for v in batch])
    wal.close()
    stream = wal.path.read_bytes()
    (seq, master_segment), = list_segments(master)

    cuts = data.draw(st.lists(
        st.integers(header_bytes, len(stream)), min_size=1, max_size=6))
    for cut in cuts:
        work = base / f"cut{cut}"
        if work.exists():
            continue
        work.mkdir()
        torn = work / master_segment.name
        torn.write_bytes(stream[:cut])

        state = recover_directory(work)
        expected = prefix_replay(versions, stream, cut, header_bytes)
        assert {v.identity() for v in state.versions} == set(expected), \
            f"cut at byte {cut}"
        shutil.rmtree(work)


@settings(max_examples=25, deadline=None)
@given(versions=version_sequences())
def test_clean_wal_recovers_every_record(tmp_path_factory, versions):
    directory = tmp_path_factory.mktemp("wal-clean")
    write_wal(directory, versions)
    state = recover_directory(directory)
    expected = {}
    for version in versions:  # later records win per identity
        expected[version.identity()] = version
    assert {v.identity() for v in state.versions} == set(expected)
    assert state.torn_bytes_truncated == 0
    assert state.wal_records == len(versions)
