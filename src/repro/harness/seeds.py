"""Canonical RNG stream names, so components never collide by accident."""

from __future__ import annotations

from repro.common.types import Address

LATENCY = "latency"

#: Stochastic fault decisions (lossy-link drops).  A dedicated stream so
#: enabling loss never perturbs latency/clock/workload draws — and with
#: no loss configured the stream is never read, keeping per-seed reports
#: byte-identical to runs from before it existed.
FAULTS = "faults"


def clock_stream(address: Address) -> str:
    return f"clock:{address}"


def workload_stream(address: Address) -> str:
    return f"workload:{address}"


def driver_stream(address: Address) -> str:
    return f"driver:{address}"
