"""Operation history records.

A *version id* is the tuple ``(key, source_replica, update_time)`` — unique
because update timestamps are strictly monotonic per node and a key lives on
one partition per DC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

# (key, source replica, update time)
VersionId = tuple[str, int, int]


def order_of(vid: VersionId) -> tuple[int, int]:
    """Last-writer-wins order of a version id (greater = later)."""
    return (vid[2], -vid[1])


@dataclass(frozen=True, slots=True)
class ReadEvent:
    client: str
    key: str
    version: VersionId
    time_s: float


@dataclass(frozen=True, slots=True)
class WriteEvent:
    client: str
    key: str
    version: VersionId
    time_s: float


@dataclass(frozen=True, slots=True)
class TxReadEvent:
    client: str
    items: tuple[tuple[str, VersionId], ...]
    time_s: float


@dataclass(slots=True)
class History:
    """An append-only log of completed operations, per session."""

    events: list = field(default_factory=list)

    def append(self, event) -> None:
        self.events.append(event)

    def by_client(self, client: str) -> Iterator:
        return (e for e in self.events if e.client == client)

    def reads(self) -> Iterator[ReadEvent]:
        return (e for e in self.events if isinstance(e, ReadEvent))

    def writes(self) -> Iterator[WriteEvent]:
        return (e for e in self.events if isinstance(e, WriteEvent))

    def tx_reads(self) -> Iterator[TxReadEvent]:
        return (e for e in self.events if isinstance(e, TxReadEvent))

    def __len__(self) -> int:
        return len(self.events)
