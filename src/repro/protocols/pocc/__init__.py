"""POCC: the paper's scalable implementation of Optimistic Causal
Consistency (Section IV).

* :class:`PoccServer` — Algorithm 2: optimistic reads that block on
  potentially missing dependencies, clock-disciplined writes, snapshot
  transactions whose visibility boundary is *received* (not stable) items.
* :class:`PoccClient` — Algorithm 1 (shared with Cure*; see
  :class:`repro.protocols.base.CausalClient`).
"""

from repro.protocols.pocc.client import PoccClient
from repro.protocols.pocc.server import PoccServer

__all__ = ["PoccClient", "PoccServer"]
