"""repro — a reproduction of "Optimistic Causal Consistency for
Geo-Replicated Key-Value Stores" (Spirovska, Didona, Zwaenepoel; ICDCS 2017).

The package implements the paper's contribution (the POCC protocol,
Algorithms 1-2), its pessimistic baseline (Cure*), the availability
fall-back (HA-POCC), and the full substrate the evaluation needs — a
discrete-event geo-replication simulator with per-node CPUs and physical
clocks, workload generators, metrics, an experiment harness that
regenerates every figure of Section V, and an independent causal
consistency checker.

Quick start::

    from repro import ExperimentConfig, ClusterConfig, WorkloadConfig
    from repro import run_experiment

    config = ExperimentConfig(
        cluster=ClusterConfig(num_partitions=4, protocol="pocc"),
        workload=WorkloadConfig(kind="get_put", gets_per_put=8),
        duration_s=2.0,
    )
    result = run_experiment(config)
    print(result.summary_text())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.common.config import (
    ClockConfig,
    ClusterConfig,
    ExperimentConfig,
    LatencyConfig,
    ProtocolConfig,
    ServiceTimeConfig,
    WorkloadConfig,
    paper_scale_cluster,
    smoke_scale_cluster,
)
from repro.common.errors import (
    ConfigError,
    ProtocolError,
    ReproError,
    SessionClosedError,
    SimulationError,
)
from repro.common.types import Address, NodeKind, OpType
from repro.clocks.vector import VectorClock
from repro.harness.builders import BuiltCluster, build_cluster
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.parallel import run_experiments
from repro.harness.replicates import (
    AggregateStat,
    ReplicatedResult,
    run_replicates,
)
from repro.metrics.timeseries import RateSeries, WindowedSampler
from repro.protocols.recovery import (
    RecoveryReport,
    lost_update_exposure,
    recover_from_dc_failure,
)
from repro.protocols.registry import PROTOCOLS
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector
from repro.storage.version import Version
from repro.verification.checker import CausalChecker, Violation
from repro.verification.convergence import (
    check_convergence,
    check_convergence_among,
)
from repro.workload.presets import WORKLOAD_PRESETS, preset

__version__ = "1.0.0"

__all__ = [
    "Address",
    "AggregateStat",
    "BuiltCluster",
    "CausalChecker",
    "ClockConfig",
    "ClusterConfig",
    "ConfigError",
    "ExperimentConfig",
    "ExperimentResult",
    "FaultInjector",
    "LatencyConfig",
    "NodeKind",
    "OpType",
    "PROTOCOLS",
    "ProtocolConfig",
    "ProtocolError",
    "RateSeries",
    "RecoveryReport",
    "ReplicatedResult",
    "ReproError",
    "ServiceTimeConfig",
    "SessionClosedError",
    "SimulationError",
    "Simulator",
    "VectorClock",
    "Version",
    "Violation",
    "WindowedSampler",
    "WORKLOAD_PRESETS",
    "WorkloadConfig",
    "build_cluster",
    "check_convergence",
    "check_convergence_among",
    "lost_update_exposure",
    "paper_scale_cluster",
    "preset",
    "recover_from_dc_failure",
    "run_experiment",
    "run_experiments",
    "run_replicates",
    "smoke_scale_cluster",
    "__version__",
]
