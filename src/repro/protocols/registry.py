"""Protocol registry: configuration name -> (server class, client class)."""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.protocols.cops import CopsClient, CopsServer
from repro.protocols.cure.client import CureClient
from repro.protocols.cure.server import CureServer
from repro.protocols.eventual import EventualClient, EventualServer
from repro.protocols.gentlerain import GentleRainClient, GentleRainServer
from repro.protocols.ha import HaPoccClient, HaPoccServer
from repro.protocols.occ_scalar import OccScalarClient, OccScalarServer
from repro.protocols.okapi.client import OkapiClient
from repro.protocols.okapi.server import OkapiServer
from repro.protocols.pocc.client import PoccClient
from repro.protocols.pocc.server import PoccServer

#: Every runnable protocol.  "pocc" and "cure" are the paper's two systems;
#: "ha_pocc" the availability extension; "gentlerain" the scalar-clock
#: predecessor baseline (paper reference [13]); "occ_scalar" the optimistic
#: variant with GentleRain-sized O(1) metadata (Section III-A's "any
#: dependency tracking mechanism" claim); "okapi" the authors' follow-up
#: system (hybrid clocks + universal stabilization); "cops" the explicit
#: dependency-check family (paper reference [8]; GET/PUT only);
#: "eventual" the unsafe strawman for checker demonstrations.
PROTOCOLS = {
    "pocc": (PoccServer, PoccClient),
    "cure": (CureServer, CureClient),
    "ha_pocc": (HaPoccServer, HaPoccClient),
    "gentlerain": (GentleRainServer, GentleRainClient),
    "occ_scalar": (OccScalarServer, OccScalarClient),
    "okapi": (OkapiServer, OkapiClient),
    "cops": (CopsServer, CopsClient),
    "eventual": (EventualServer, EventualClient),
}


def list_protocols() -> list[str]:
    """All registered protocol names, sorted.

    The single discovery point for CLIs (``repro-figures
    --list-protocols``, ``repro-serve --protocol``) — nobody should have
    to read this module to learn what names are runnable.
    """
    return sorted(PROTOCOLS)


def protocol_summary(name: str) -> str:
    """One line describing a registered protocol (server docstring head)."""
    doc = server_class(name).__doc__ or ""
    first = doc.strip().splitlines()[0] if doc.strip() else ""
    return first


def server_class(name: str):
    """The server class registered under ``name``."""
    try:
        return PROTOCOLS[name][0]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS)}"
        ) from None


def client_class(name: str):
    """The client class registered under ``name``."""
    try:
        return PROTOCOLS[name][1]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS)}"
        ) from None
