"""Figure 1c — throughput vs GET:PUT ratio at saturation.

Paper claim: throughput decreases as the write intensity grows for both
systems; POCC's worst case is ~10% behind Cure* (at 2:1), because a higher
update rate raises the chance that an operation blocks."""

from benchmarks.common import run_figure


def test_fig1c_write_intensity(benchmark):
    data = run_figure(benchmark, "1c")
    # Series are keyed by gets-per-put; ratios run high -> low.
    pocc = {x: y for x, y in data.series["POCC"]}
    cure = {x: y for x, y in data.series["Cure*"]}
    ratios = sorted(pocc, reverse=True)

    # Write intensity costs POCC throughput clearly (more updates -> more
    # blocking, the paper's mechanism).
    assert pocc[ratios[0]] > pocc[ratios[-1]] * 1.05

    # Cure* degrades or stays flat — in this substrate replication apply is
    # backgrounded, so its foreground throughput is nearly ratio-
    # insensitive at saturation; it must never *improve* with writes.
    assert cure[ratios[-1]] <= cure[ratios[0]] * 1.05

    # POCC stays competitive at every ratio (paper: within ~10% at the
    # write-heaviest point; we allow simulator slack).
    for ratio in ratios:
        assert pocc[ratio] > cure[ratio] * 0.75, ratio
