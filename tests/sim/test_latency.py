"""Tests for the latency models."""

import random

import pytest

from repro.common.config import LatencyConfig
from repro.common.errors import ConfigError
from repro.common.types import client_address, server_address
from repro.sim.latency import ConstantLatency, GeoLatencyModel, UniformLatency


def _model(jitter=0.0, **kwargs) -> GeoLatencyModel:
    config = LatencyConfig(jitter_ratio=jitter, **kwargs)
    return GeoLatencyModel(config, random.Random(1))


def test_constant_latency():
    model = ConstantLatency(0.01)
    assert model.sample(server_address(0, 0), server_address(1, 0)) == 0.01


def test_constant_latency_rejects_negative():
    with pytest.raises(ConfigError):
        ConstantLatency(-1.0)


def test_uniform_latency_within_bounds():
    model = UniformLatency(0.001, 0.002, random.Random(3))
    src, dst = server_address(0, 0), server_address(1, 0)
    for _ in range(100):
        assert 0.001 <= model.sample(src, dst) <= 0.002


def test_uniform_latency_rejects_bad_bounds():
    with pytest.raises(ConfigError):
        UniformLatency(0.002, 0.001, random.Random(3))


def test_geo_inter_dc_uses_matrix():
    model = _model()
    assert model.sample(server_address(0, 0), server_address(2, 5)) == (
        LatencyConfig().inter_dc_s[0][2]
    )
    assert model.sample(server_address(2, 0), server_address(1, 0)) == (
        LatencyConfig().inter_dc_s[2][1]
    )


def test_geo_intra_dc_between_partitions():
    model = _model()
    assert model.sample(server_address(0, 0), server_address(0, 1)) == (
        LatencyConfig().intra_dc_s
    )


def test_geo_client_collocated_with_server_is_local():
    model = _model()
    client = client_address(1, 3, index=0)
    server = server_address(1, 3)
    assert model.sample(client, server) == LatencyConfig().client_local_s
    assert model.sample(server, client) == LatencyConfig().client_local_s


def test_geo_client_to_other_partition_is_intra_dc():
    model = _model()
    client = client_address(1, 3, index=0)
    server = server_address(1, 0)
    assert model.sample(client, server) == LatencyConfig().intra_dc_s


def test_geo_client_to_remote_dc_uses_matrix():
    model = _model()
    client = client_address(0, 0, index=0)
    server = server_address(2, 0)
    assert model.sample(client, server) == LatencyConfig().inter_dc_s[0][2]


def test_jitter_keeps_mean_close_and_values_positive():
    model = _model(jitter=0.10)
    src, dst = server_address(0, 0), server_address(1, 0)
    base = LatencyConfig().inter_dc_s[0][1]
    samples = [model.sample(src, dst) for _ in range(3000)]
    assert all(s > 0 for s in samples)
    mean = sum(samples) / len(samples)
    assert abs(mean - base) / base < 0.03  # lognormal centred on the base


def test_jitter_produces_spread():
    model = _model(jitter=0.10)
    src, dst = server_address(0, 0), server_address(1, 0)
    samples = {model.sample(src, dst) for _ in range(50)}
    assert len(samples) > 40


def test_latency_config_validation():
    with pytest.raises(ConfigError):
        LatencyConfig(intra_dc_s=-1.0).validate(3)
    with pytest.raises(ConfigError):
        LatencyConfig(jitter_ratio=-0.1).validate(3)
    with pytest.raises(ConfigError):
        LatencyConfig().validate(5)  # default matrix only covers 3 DCs
    LatencyConfig().validate(3)


def test_sample_base_matches_base_latency_for_all_endpoint_classes():
    """``sample`` inlines the base-latency lookup for speed; this pins the
    inline copy to the public :meth:`base_latency` contract across every
    endpoint class (jitter off, so sample returns the base exactly)."""
    model = _model()
    pairs = [
        (client_address(1, 3, index=0), server_address(1, 3)),  # collocated
        (server_address(1, 3), client_address(1, 3, index=0)),  # reply leg
        (server_address(0, 0), server_address(0, 1)),           # intra-DC
        (client_address(0, 0, index=1), server_address(0, 2)),  # cross-part.
        (server_address(0, 0), server_address(2, 5)),           # inter-DC
        (client_address(2, 1, index=0), server_address(0, 1)),  # client WAN
    ]
    for src, dst in pairs:
        assert model.sample(src, dst) == model.base_latency(src, dst)
