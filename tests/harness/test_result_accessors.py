"""Tests for ExperimentResult's derived views and sanity checks."""

import pytest

from repro.harness.experiment import ExperimentResult, _sanity_check


def _result(**overrides):
    base = dict(
        name="r",
        protocol="pocc",
        config={},
        duration_s=2.0,
        total_ops=100,
        throughput_ops_s=50.0,
        op_stats={
            "get": {"count": 80, "mean": 0.001, "p50": 0.001, "p95": 0.002,
                    "p99": 0.003, "max": 0.004},
            "put": {"count": 20, "mean": 0.002, "p50": 0.002, "p95": 0.003,
                    "p99": 0.004, "max": 0.005},
            "ro_tx": {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                      "p99": 0.0, "max": 0.0},
        },
        blocking={"get_vv": {"attempts": 10, "blocked": 2,
                             "probability": 0.2,
                             "mean_block_time_s": 0.001}},
        get_staleness={"reads": 80, "pct_old": 1.0, "pct_unmerged": 2.0,
                       "avg_fresher_versions": 1.0,
                       "avg_unmerged_versions": 1.0},
        tx_staleness={"reads": 0, "pct_old": 0.0, "pct_unmerged": 0.0,
                      "avg_fresher_versions": 0.0,
                      "avg_unmerged_versions": 0.0},
        gss_lag={"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                 "p99": 0.0, "max": 0.0},
        visibility_lag={"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                        "p99": 0.0, "max": 0.0},
        network_messages=1000,
        network_bytes=50_000,
        inter_dc_bytes=30_000,
        bytes_per_op=500.0,
        cpu_utilization_mean=0.5,
        cpu_utilization_max=0.7,
        sim_events=12345,
    )
    base.update(overrides)
    return ExperimentResult(**base)


def test_mean_response_time_weighs_op_counts():
    result = _result()
    expected = (80 * 0.001 + 20 * 0.002) / 100
    assert result.mean_response_time_s == pytest.approx(expected)


def test_mean_response_time_empty():
    result = _result(op_stats={
        "get": {"count": 0, "mean": 0.0, "p50": 0, "p95": 0, "p99": 0,
                "max": 0},
    })
    assert result.mean_response_time_s == 0.0


def test_op_mean_lookup():
    result = _result()
    assert result.op_mean_s("put") == pytest.approx(0.002)
    assert result.op_mean_s("nonexistent") == 0.0


def test_blocking_extras_default_zero():
    result = _result()
    assert result.blocking_probability == 0.0
    assert result.mean_block_time_s == 0.0
    result.extras["blocking_probability"] = 0.125
    assert result.blocking_probability == 0.125


def test_summary_text_without_verification():
    text = _result().summary_text()
    assert "verification" not in text
    assert "throughput" in text


def test_summary_text_with_verification():
    result = _result(
        verification={"violations": 0, "reads_checked": 10,
                      "tx_reads_checked": 0},
        divergences=0,
    )
    assert "verification" in result.summary_text()


def test_sanity_check_accepts_consistent_result():
    _sanity_check(_result())


def test_sanity_check_rejects_blocked_exceeding_attempts():
    bad = _result(blocking={"get_vv": {"attempts": 1, "blocked": 5,
                                       "probability": 5.0,
                                       "mean_block_time_s": 0.0}})
    with pytest.raises(AssertionError):
        _sanity_check(bad)
