"""Tests for garbage collection (Section IV-B retention rule)."""

from repro.storage.chain import VersionChain
from repro.storage.gc import collect_chain
from repro.storage.store import PartitionStore
from repro.storage.version import Version


def _version(key, ut, dv, sr=0):
    return Version(key=key, value=ut, sr=sr, ut=ut, dv=dv)


def _chain(*versions):
    chain = VersionChain()
    for version in versions:
        chain.insert(version)
    return chain


def test_retains_first_covered_version_and_drops_older():
    chain = _chain(
        _version("k", 40, (35, 0, 0)),   # not covered by GV
        _version("k", 30, (20, 0, 0)),   # first covered -> keep, stop
        _version("k", 20, (10, 0, 0)),   # older -> drop
        _version("k", 10, (0, 0, 0)),    # older -> drop
    )
    removed = collect_chain(chain, gv=[25, 0, 0])
    assert removed == 2
    assert [v.ut for v in chain] == [40, 30]


def test_keeps_everything_when_nothing_covered():
    chain = _chain(
        _version("k", 40, (35, 0, 0)),
        _version("k", 30, (28, 0, 0)),
    )
    removed = collect_chain(chain, gv=[5, 0, 0])
    assert removed == 0
    assert len(chain) == 2


def test_head_covered_drops_all_older():
    chain = _chain(
        _version("k", 40, (3, 0, 0)),
        _version("k", 30, (2, 0, 0)),
        _version("k", 20, (1, 0, 0)),
    )
    removed = collect_chain(chain, gv=[100, 100, 100])
    assert removed == 2
    assert [v.ut for v in chain] == [40]


def test_chain_never_empties():
    chain = _chain(_version("k", 40, (35, 0, 0)))
    collect_chain(chain, gv=[0, 0, 0])
    assert len(chain) == 1


def test_single_covered_version_survives():
    chain = _chain(_version("k", 10, (0, 0, 0)))
    removed = collect_chain(chain, gv=[100, 100, 100])
    assert removed == 0
    assert chain.head().ut == 10


def test_store_collect_applies_to_all_chains_and_tracks_stats():
    store = PartitionStore()
    for key in ("a", "b"):
        store.insert(_version(key, 10, (0, 0, 0)))
        store.insert(_version(key, 20, (1, 0, 0)))
        store.insert(_version(key, 30, (2, 0, 0)))
    removed = store.collect([100, 100, 100])
    assert removed == 4  # two per chain
    assert store.gc_stats.rounds == 1
    assert store.gc_stats.versions_removed == 4
    assert store.gc_stats.last_gv == [100, 100, 100]
    assert store.total_versions() == 2


def test_store_collect_skips_single_version_chains():
    store = PartitionStore()
    store.insert(_version("a", 10, (0, 0, 0)))
    removed = store.collect([100, 100, 100])
    assert removed == 0
    assert store.gc_stats.chains_scanned == 0
