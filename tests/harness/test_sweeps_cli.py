"""Tests for sweep helpers and the command-line interface."""

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.cli import build_parser, main
from repro.harness.sweeps import (
    clients_sweep,
    override_sweep,
    protocol_sweep,
    run_sweep,
)


def _base():
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40),
        workload=WorkloadConfig(clients_per_partition=2, gets_per_put=2,
                                think_time_s=0.005),
        warmup_s=0.1,
        duration_s=0.5,
        name="base",
    )


def test_protocol_sweep_builds_configs():
    configs = protocol_sweep(_base(), ["pocc", "cure"])
    assert [c.cluster.protocol for c in configs] == ["pocc", "cure"]
    assert configs[0].name == "base-pocc"


def test_clients_sweep_builds_configs():
    configs = clients_sweep(_base(), [1, 4])
    assert [c.workload.clients_per_partition for c in configs] == [1, 4]


def test_override_sweep_custom_transform():
    import dataclasses

    def with_seed(base, seed):
        return dataclasses.replace(base, seed=seed)

    configs = override_sweep(_base(), with_seed, [1, 2, 3])
    assert [c.seed for c in configs] == [1, 2, 3]


def test_run_sweep_executes_and_reports_progress():
    seen = []
    results = run_sweep(
        protocol_sweep(_base(), ["pocc", "cure"]),
        progress=lambda config, result: seen.append(config.cluster.protocol),
    )
    assert len(results) == 2
    assert seen == ["pocc", "cure"]
    assert all(r.total_ops > 0 for r in results)


def test_run_sweep_parallel_matches_serial():
    configs = protocol_sweep(_base(), ["pocc", "cure"])
    serial = run_sweep(configs, parallelism=1)
    parallel = run_sweep(configs, parallelism=2)
    assert [r.name for r in serial] == [r.name for r in parallel]
    assert [r.total_ops for r in serial] == [r.total_ops for r in parallel]
    assert [r.sim_events for r in serial] == [r.sim_events for r in parallel]


def test_cli_parser_defaults():
    args = build_parser().parse_args(["--figure", "1a"])
    assert args.figures == ["1a"]
    assert args.scale == "bench"
    assert args.parallelism is None


def test_cli_parallelism_flag():
    args = build_parser().parse_args(["--figure", "1a", "--parallelism", "4"])
    assert args.parallelism == 4


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--figure", "9z"])


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "1a" in out and "3d" in out


def test_cli_requires_a_selection():
    with pytest.raises(SystemExit):
        main([])


def test_cli_runs_figure_and_writes_md(tmp_path, capsys):
    md_path = tmp_path / "report.md"
    assert main(["--figure", "1a", "--scale", "smoke", "--quiet",
                 "--md", str(md_path)]) == 0
    out = capsys.readouterr().out
    assert "Figure 1a" in out
    assert md_path.exists()
    assert "# Reproduced figures" in md_path.read_text()
