"""OCC-scalar semantics: optimistic visibility behind O(1) metadata.

Covers the distinctive behaviours of the scalar variant:
* purely local sessions never stall (writes do not raise ``rdt``);
* a remote dependency gates reads on *every* remote DC (false blocking,
  the granularity cost vs POCC's vector);
* wire metadata really is O(1);
* no stabilization protocol runs at all;
* the paper's Section III-B partition example still blocks correctly.
"""

import pytest

import helpers
from repro.common.config import (
    ClockConfig,
    ClusterConfig,
    ExperimentConfig,
    LatencyConfig,
    WorkloadConfig,
)
from repro.harness.experiment import run_experiment
from repro.metrics.collectors import BLOCK_GET_VV
from repro.protocols import messages as m


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="occ_scalar")


@pytest.fixture
def deterministic():
    """Zero skew, zero jitter: WAN delays are exact."""
    return helpers.make_cluster(
        protocol="occ_scalar",
        zero_skew=True,
        cluster_overrides={"latency": LatencyConfig(jitter_ratio=0.0)},
    )


def test_read_your_writes(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "mine")
    reply = helpers.get(built, client, key)
    assert reply.value == "mine"


def test_local_session_never_raises_rdt(built):
    """Writes and local reads keep ``rdt`` at zero, so a single-DC session
    can never stall on the remote horizon."""
    built.metrics.arm(built.sim.now)
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    helpers.put(built, client, key_a, 1)
    helpers.get(built, client, key_a)
    helpers.put(built, client, key_b, 2)
    helpers.get(built, client, key_b)
    assert client.rdt == 0
    assert client.dt > 0
    assert built.metrics.blocking[BLOCK_GET_VV].blocked == 0


def test_remote_read_raises_rdt(built):
    key = helpers.key_on_partition(built, 0)
    writer = helpers.client_at(built, dc=1)
    put_reply = helpers.put(built, writer, key, "remote")
    helpers.settle(built, 0.5)
    reader = helpers.client_at(built, dc=0)
    got = helpers.get(built, reader, key)
    assert got.value == "remote"
    assert reader.rdt >= put_reply.ut
    assert reader.dt >= put_reply.ut


def test_scalar_waits_on_every_remote_dc():
    """The granularity cost: a dependency on DC1 makes the scalar GET wait
    for DC2's version-vector entry too, while POCC waits only on DC1."""

    def stall_for(protocol: str) -> float:
        built = helpers.make_cluster(
            protocol=protocol,
            zero_skew=True,
            cluster_overrides={"latency": LatencyConfig(jitter_ratio=0.0)},
        )
        built.metrics.arm(built.sim.now)
        helpers.settle(built, 0.3)  # heartbeats flowing everywhere
        client = helpers.client_at(built, dc=0)
        server = built.servers[built.topology.server(0, 0)]
        dep_ts = server.vv[1] + 5_000  # 5 ms ahead of DC1's entry
        if protocol == "occ_scalar":
            client.rdt = dep_ts
        else:
            client.rdv[1] = dep_ts
        helpers.get(built, client, helpers.key_on_partition(built, 0),
                    timeout_s=2.0)
        stats = built.metrics.blocking[BLOCK_GET_VV]
        assert stats.blocked == 1
        return stats.mean_block_time_s

    pocc_stall = stall_for("pocc")
    scalar_stall = stall_for("occ_scalar")
    # POCC waits ~5 ms for DC1's entry; the scalar must additionally wait
    # for DC2 (Ireland, 70 ms away) to pass the same timestamp.
    assert scalar_stall > pocc_stall * 3
    assert scalar_stall > 0.030


def test_wire_metadata_is_constant_size(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "x")
    got = helpers.get(built, client, key)
    assert len(got.dv) == 1

    # Against the vector protocol's M-entry messages.
    pocc = helpers.make_cluster(protocol="pocc")
    vec_client = helpers.client_at(pocc, dc=0)

    scalar_get = m.GetReq(key=key, rdv=client.read_dependency_vector(),
                          client=client.address, op_id=1)
    vector_get = m.GetReq(key=key, rdv=vec_client.read_dependency_vector(),
                          client=vec_client.address, op_id=1)
    assert scalar_get.size_bytes() < vector_get.size_bytes()

    scalar_put = m.PutReq(key=key, value="v", dv=[client.dt, client.rdt],
                          client=client.address, op_id=2)
    vector_put = m.PutReq(key=key, value="v", dv=list(vec_client.dv),
                          client=vec_client.address, op_id=2)
    assert scalar_put.size_bytes() < vector_put.size_bytes()


def test_no_stabilization_protocol_runs():
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40,
                              protocol="occ_scalar"),
        workload=WorkloadConfig(clients_per_partition=2, think_time_s=0.004),
        warmup_s=0.2,
        duration_s=1.0,
        seed=5,
    )
    result = run_experiment(config)
    assert result.total_ops > 0
    # No GSS/GST machinery: the lag histogram never receives a sample.
    assert result.gss_lag["count"] == 0


def test_reads_always_fresh():
    """Optimistic reads return the chain head: zero "old" GETs."""
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40,
                              protocol="occ_scalar"),
        workload=WorkloadConfig(clients_per_partition=3, think_time_s=0.002,
                                gets_per_put=2),
        warmup_s=0.2,
        duration_s=1.0,
        seed=9,
    )
    result = run_experiment(config)
    assert result.get_staleness["reads"] > 100
    assert result.get_staleness["pct_old"] == 0.0


def test_ro_tx_returns_consistent_cut(deterministic):
    built = deterministic
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    helpers.put(built, client, key_a, "a1")
    helpers.put(built, client, key_b, "b1")
    reply = helpers.ro_tx(built, client, [key_a, key_b])
    values = {item.key: item.value for item in reply.versions}
    assert values == {key_a: "a1", key_b: "b1"}


def test_ro_tx_snapshot_covers_own_fresh_write(built):
    """dt (not just rdt) bounds the snapshot: a transaction right after a
    local write must still see that write."""
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "before")
    helpers.put(built, client, key, "after")
    reply = helpers.ro_tx(built, client, [key])
    assert reply.versions[0].value == "after"


def test_partition_blocks_dependent_read(built):
    """Section III-B example, scalar edition: Y depends on X; X is cut off
    from DC1; a DC1 client that read Y stalls on GET(x) until heal."""
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)
    built.faults.partition_dcs([0], [1])

    writer0 = helpers.client_at(built, dc=0)
    helpers.put(built, writer0, key_x, "X")
    helpers.settle(built, 0.3)

    client2 = helpers.client_at(built, dc=2)
    assert helpers.get(built, client2, key_x).value == "X"
    helpers.put(built, client2, key_y, "Y")
    helpers.settle(built, 0.3)

    client1 = helpers.client_at(built, dc=1, partition=1)
    assert helpers.get(built, client1, key_y).value == "Y"
    assert client1.rdt > 0

    result = helpers.OpResult()
    client1.get(key_x, result)
    built.sim.run(until=built.sim.now + 1.0)
    assert not result.done, "scalar GET must stall on the missing dependency"

    built.faults.heal_all()
    built.sim.run(until=built.sim.now + 1.0)
    assert result.done
    assert result.reply.value == "X"


def test_session_reset_clears_scalars(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "v")
    assert client.dt > 0
    client.reset_session()
    assert client.dt == 0
    assert client.rdt == 0
