"""Latency models for the simulated geo network.

The deployment in the paper spans Oregon, Virginia and Ireland
(Section V-A); :class:`GeoLatencyModel` reproduces that shape with a one-way
latency matrix plus lognormal jitter.  Simpler models are provided for unit
tests and micro-benchmarks.
"""

from __future__ import annotations

import math
import random
from typing import Protocol

from repro.common.config import LatencyConfig
from repro.common.errors import ConfigError
from repro.common.types import Address, ReplicaId


class LatencyModel(Protocol):
    """Samples a one-way message latency between two endpoints."""

    def sample(self, src: Address, dst: Address) -> float:
        """One-way latency in seconds for a message src -> dst."""
        ...


class ConstantLatency:
    """The same latency for every message (unit tests)."""

    def __init__(self, latency_s: float):
        if latency_s < 0:
            raise ConfigError("latency must be >= 0")
        self.latency_s = latency_s

    def sample(self, src: Address, dst: Address) -> float:
        return self.latency_s


class UniformLatency:
    """Uniform latency in [low, high] independent of endpoints."""

    def __init__(self, low_s: float, high_s: float, rng: random.Random):
        if not 0 <= low_s <= high_s:
            raise ConfigError("need 0 <= low_s <= high_s")
        self.low_s = low_s
        self.high_s = high_s
        self._rng = rng

    def sample(self, src: Address, dst: Address) -> float:
        return self._rng.uniform(self.low_s, self.high_s)


class GeoLatencyModel:
    """Geo-replication latency: matrix base + lognormal jitter.

    * client <-> collocated server: ``client_local_s``
    * same DC, different node:      ``intra_dc_s``
    * different DCs:                ``inter_dc_s[src.dc][dst.dc]``

    Jitter multiplies the base by ``exp(N(0, sigma))`` with sigma chosen so
    the standard deviation of the multiplier is roughly ``jitter_ratio``.
    The multiplicative form keeps latencies positive and gives the heavier
    right tail seen in real WANs.
    """

    def __init__(self, config: LatencyConfig, rng: random.Random):
        self._config = config
        self._rng = rng
        self._sigma = math.sqrt(math.log(1.0 + config.jitter_ratio**2))
        # lognormvariate(mu, sigma) with mu = -sigma^2/2 keeps E[mult] = 1.
        self._mu = -0.5 * self._sigma**2
        self._lognormvariate = rng.lognormvariate
        # Slow-link fault injection: directed (src DC, dst DC) -> factor
        # applied on top of the base matrix.  Consulted only while non-
        # empty, so the unfaulted hot path is unchanged.
        self._link_multipliers: dict[tuple[ReplicaId, ReplicaId], float] = {}

    @property
    def config(self) -> LatencyConfig:
        return self._config

    def base_latency(self, src: Address, dst: Address) -> float:
        """The jitter-free one-way latency between two endpoints."""
        if src.dc == dst.dc:
            if (
                src.partition == dst.partition
                and (src.is_client or dst.is_client)
            ):
                return self._config.client_local_s
            return self._config.intra_dc_s
        return self._config.inter_dc_s[src.dc][dst.dc]

    def inter_dc_base(self, src_dc: ReplicaId, dst_dc: ReplicaId) -> float:
        """Jitter-free one-way latency between two DCs."""
        return self._config.inter_dc_s[src_dc][dst_dc]

    def sample(self, src: Address, dst: Address) -> float:
        config = self._config
        if src.dc == dst.dc:
            if (
                src.partition == dst.partition
                and (src.is_client or dst.is_client)
            ):
                base = config.client_local_s
            else:
                base = config.intra_dc_s
        else:
            base = config.inter_dc_s[src.dc][dst.dc]
            if self._link_multipliers:
                base *= self._link_multipliers.get((src.dc, dst.dc), 1.0)
        if self._sigma == 0.0 or base == 0.0:
            return base
        return base * self._lognormvariate(self._mu, self._sigma)

    # ------------------------------------------------------------------
    # Slow-link fault injection (driven by FaultInjector)
    # ------------------------------------------------------------------
    def set_link_multiplier(
        self, src_dc: ReplicaId, dst_dc: ReplicaId, factor: float
    ) -> None:
        """Stretch (or shrink) one directed inter-DC link by ``factor``.

        Jitter still applies on top, and per-channel FIFO is preserved by
        the network's delivery clamp, so slowing a link mid-run never
        reorders a channel.
        """
        if factor <= 0:
            raise ConfigError("link multiplier must be > 0")
        self._link_multipliers[(src_dc, dst_dc)] = factor

    def clear_link_multiplier(self, src_dc: ReplicaId, dst_dc: ReplicaId) -> None:
        self._link_multipliers.pop((src_dc, dst_dc), None)

    def clear_link_multipliers(self) -> None:
        self._link_multipliers.clear()
