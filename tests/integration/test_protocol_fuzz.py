"""Randomized cross-protocol conformance: every registered protocol, seeded
random workloads, random latency geometry and random partition/heal fault
schedules — all checked by the independent causal checker and the
convergence audit.

The point of the suite is that a *new* protocol cannot silently break
causality: registering it makes it subject to the same adversarial
schedules as the others.  Everything is derived deterministically from the
seed (sim engine ties, RNG streams, fault times), so a passing seed passes
forever and a failing seed is replayable.

``eventual`` is the deliberately unsafe strawman: it is exempt from the
zero-violation assertion (the checker *catching* it is asserted instead)
but must still converge after the faults heal.
"""

from __future__ import annotations

import random

import pytest

from repro.common.config import (
    DEFAULT_GEO_LATENCY_S,
    ClockConfig,
    ClusterConfig,
    ExperimentConfig,
    LatencyConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.harness.builders import build_cluster
from repro.harness.experiment import run_experiment
from repro.protocols.registry import PROTOCOLS

SEEDS = (101, 202, 303)

#: Every registered protocol that promises causal consistency.
CAUSAL_PROTOCOLS = tuple(name for name in PROTOCOLS if name != "eventual")

WARMUP_S = 0.2
DURATION_S = 1.3

_PROTO_INDEX = {name: i for i, name in enumerate(PROTOCOLS)}


def _rng_for(protocol: str, seed: int) -> random.Random:
    return random.Random(seed * 7919 + _PROTO_INDEX[protocol])


def _fuzz_config(protocol: str, seed: int) -> ExperimentConfig:
    """A deterministic random deployment + workload for (protocol, seed)."""
    rng = _rng_for(protocol, seed)
    scale = rng.uniform(0.6, 1.4)
    latency = LatencyConfig(
        inter_dc_s=tuple(
            tuple(v * scale for v in row) for row in DEFAULT_GEO_LATENCY_S
        ),
        jitter_ratio=rng.uniform(0.0, 0.4),
    )
    clocks = ClockConfig(
        max_offset_us=rng.choice((0, 200, 500, 1500)),
        max_drift_ppm=rng.uniform(0.0, 50.0),
    )
    # Short block timeout so partition episodes actually demote HA-POCC
    # sessions (exercising the recovery protocol under the checker).
    protocol_config = ProtocolConfig(block_timeout_s=0.08)
    keys_per_partition = 40
    if protocol == "eventual":
        # The strawman needs dependency relays to expose itself: a hot key
        # space, no think time, and a WAN geometry where the path through
        # the middle DC beats the direct link (a write and a dependent
        # write from different DCs then arrive out of causal order — the
        # FIFO channels hide anomalies between any *single* DC pair).
        keys_per_partition = 8
        relay = tuple(
            tuple(v * scale for v in row)
            for row in ((0.0, 0.010, 0.080),
                        (0.010, 0.0, 0.010),
                        (0.080, 0.010, 0.0))
        )
        latency = LatencyConfig(inter_dc_s=relay, jitter_ratio=0.2)
        workload = WorkloadConfig(
            kind="get_put",
            gets_per_put=2,
            clients_per_partition=3,
            think_time_s=0.0,
            zipf_theta=rng.uniform(0.8, 0.99),
        )
    elif protocol == "cops":
        workload = WorkloadConfig(
            kind="get_put",
            gets_per_put=rng.choice((2, 4)),
            clients_per_partition=rng.choice((2, 3)),
            think_time_s=rng.uniform(0.002, 0.008),
            zipf_theta=rng.uniform(0.8, 0.99),
        )
    else:
        workload = WorkloadConfig(
            kind="mixed",
            read_ratio=rng.uniform(0.65, 0.8),
            tx_ratio=rng.uniform(0.1, 0.2),
            tx_partitions=2,
            clients_per_partition=rng.choice((2, 3)),
            think_time_s=rng.uniform(0.002, 0.008),
            zipf_theta=rng.uniform(0.8, 0.99),
        )
    return ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3,
            num_partitions=2,
            keys_per_partition=keys_per_partition,
            protocol=protocol,
            latency=latency,
            clocks=clocks,
            protocol_config=protocol_config,
        ),
        workload=workload,
        warmup_s=WARMUP_S,
        duration_s=DURATION_S,
        seed=seed,
        verify=True,
        name=f"fuzz-{protocol}-s{seed}",
    )


def _schedule_faults(built, protocol: str, seed: int) -> None:
    """1-2 random partition episodes plus one episode from every other
    repairable fault class, all healed well before the run ends (blocked
    optimistic operations must be able to drain, and convergence is only
    defined for healed networks).

    Lossy links are deliberately absent: a dropped dependency relay
    blocks COPS forever, and loss coverage lives in the chaos matrix
    (``repro.runtime.chaos``) with anti-entropy backfill enabled.
    """
    rng = _rng_for(protocol, seed * 31 + 7)
    shapes = (([0], [1]), ([1], [2]), ([0], [2]),
              ([0], [1, 2]), ([1], [0, 2]), ([2], [0, 1]))
    for _ in range(rng.randint(1, 2)):
        start = rng.uniform(0.25, 0.7)
        duration = rng.uniform(0.1, 0.3)
        group_a, group_b = rng.choice(shapes)
        built.faults.schedule_partition(start, group_a, group_b,
                                        heal_after=duration)
    src, dst = rng.sample(range(3), 2)
    built.faults.schedule_one_way_cut(
        rng.uniform(0.25, 0.7), src, dst,
        heal_after=rng.uniform(0.1, 0.3),
    )
    src, dst = rng.sample(range(3), 2)
    built.faults.schedule_slow_link(
        rng.uniform(0.25, 0.7), src, dst, rng.uniform(3.0, 12.0),
        restore_after=rng.uniform(0.1, 0.3),
    )
    built.faults.schedule_clock_step(
        rng.uniform(0.25, 0.7), rng.randrange(3),
        rng.choice((-1, 1)) * rng.randint(500, 4_000),
    )


def _run_fuzz(protocol: str, seed: int):
    config = _fuzz_config(protocol, seed)
    built = build_cluster(config)
    _schedule_faults(built, protocol, seed)
    result = run_experiment(config, built=built)
    return built, result


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", CAUSAL_PROTOCOLS)
def test_causal_protocols_survive_fault_fuzz(protocol, seed):
    built, result = _run_fuzz(protocol, seed)
    assert built.faults.partitions_started >= 1  # schedule actually fired
    assert built.faults.partitions_healed >= 1
    assert built.faults.one_way_cuts_started >= 1
    assert built.faults.slow_links_set >= 1
    assert built.faults.clock_steps >= 1
    assert not built.faults.any_fault_active  # everything healed/restored
    violations = built.checker.violations
    assert result.verification["violations"] == 0, (
        f"{protocol} seed {seed}: "
        + "; ".join(v.describe() for v in violations[:5])
    )
    # Non-vacuity: the checker really audited a meaningful history.
    assert result.verification["reads_checked"] > 100, protocol
    if built.config.workload.kind == "mixed":
        assert result.verification["tx_reads_checked"] > 10, protocol
    assert result.divergences == 0, f"{protocol} seed {seed} diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_unsafe_strawman_still_converges_under_fuzz(seed):
    built, result = _run_fuzz("eventual", seed)
    assert result.divergences == 0  # LWW convergence holds even for it


def test_fuzz_catches_the_unsafe_strawman():
    """The suite is not vacuous: across the seeds, the same schedules that
    every causal protocol survives make the eventual strawman fail."""
    violations = 0
    for seed in SEEDS:
        _, result = _run_fuzz("eventual", seed)
        violations += result.verification["violations"]
    assert violations > 0


def test_ha_pocc_fuzz_exercises_session_recovery():
    """At least one fuzz schedule must actually demote HA-POCC sessions,
    otherwise the suite is not testing the recovery path at all."""
    resets = 0
    for seed in SEEDS:
        _, result = _run_fuzz("ha_pocc", seed)
        resets += result.verification["session_resets"]
    assert resets > 0


@pytest.mark.parametrize("protocol", ("pocc", "okapi"))
def test_fuzz_runs_are_deterministic_per_seed(protocol):
    """The same (protocol, seed) replays to the identical history even
    under fault schedules — the property that makes failures debuggable."""
    _, first = _run_fuzz(protocol, SEEDS[0])
    _, second = _run_fuzz(protocol, SEEDS[0])
    assert first.total_ops == second.total_ops
    assert first.sim_events == second.sim_events
    assert first.verification == second.verification
