"""Properties of the consistent-hash ring and epoch-versioned views.

Three guarantees everything above this layer leans on:

1. **Cross-process determinism** — the ring is a pure function of
   ``(members, vnodes)`` built on crc32, so every server, client,
   recovery tool and *separately spawned interpreter* derives the same
   placement with no coordination.
2. **Minimal movement** — a view change moves about K/S of the keys
   (consistent hashing's whole point); the reshard chaos cells gate on
   the same bound at runtime.
3. **KeyPools consistency** — the workload's per-partition key pools
   agree with the view's placement, before and after a reshard, so
   generated traffic always targets owners.
"""

import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ring import ClusterView, HashRing, initial_view
from repro.cluster.topology import KeyPools, Topology
from repro.common.errors import ConfigError

# A partition address space comfortably above the member counts drawn
# below, so joins always have somewhere to come from.
MAX_PARTITIONS = 12

member_sets = st.sets(
    st.integers(min_value=0, max_value=MAX_PARTITIONS - 1),
    min_size=1, max_size=MAX_PARTITIONS,
).map(lambda s: tuple(sorted(s)))

keys = st.lists(
    st.integers(min_value=0, max_value=10_000).map(lambda i: f"k{i:08d}"),
    min_size=1, max_size=200, unique=True,
)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
@given(members=member_sets, vnodes=st.integers(1, 128), key_list=keys)
@settings(max_examples=100, deadline=None)
def test_placement_is_a_pure_function_of_members_and_vnodes(
    members, vnodes, key_list
):
    first = ClusterView(1, members, vnodes)
    second = ClusterView(1, tuple(reversed(members)), vnodes)  # order-free
    for key in key_list:
        assert first.owner_of(key) == second.owner_of(key)
        assert first.owner_of(key) in members


@given(members=member_sets, key_list=keys)
@settings(max_examples=30, deadline=None)
def test_wire_round_trip_preserves_placement(members, key_list):
    view = ClusterView(3, members, 32)
    clone = ClusterView.from_wire(*view.to_wire())
    assert clone == view
    assert [clone.owner_of(k) for k in key_list] == \
        [view.owner_of(k) for k in key_list]


def test_placement_identical_in_a_separate_interpreter():
    """The property the wire format rides on: a *different process*
    (fresh interpreter, its own hash seed) derives the identical
    placement from ``(members, vnodes)`` alone."""
    members, vnodes = (0, 2, 5), 64
    sample = [f"k{i:08d}" for i in range(500)]
    local = [ClusterView(1, members, vnodes).owner_of(k) for k in sample]
    script = (
        "from repro.cluster.ring import ClusterView;"
        f"view = ClusterView(1, {members!r}, {vnodes});"
        f"print(','.join(str(view.owner_of(k)) for k in {sample!r}))"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    assert [int(x) for x in out.split(",")] == local


# ----------------------------------------------------------------------
# Minimal movement
# ----------------------------------------------------------------------
@given(
    members=st.sets(st.integers(0, MAX_PARTITIONS - 1),
                    min_size=2, max_size=MAX_PARTITIONS - 1)
    .map(lambda s: tuple(sorted(s))),
    joiner=st.integers(0, MAX_PARTITIONS - 1),
)
@settings(max_examples=50, deadline=None)
def test_one_join_moves_about_k_over_s_keys(members, joiner):
    if joiner in members:
        joiner = next(p for p in range(MAX_PARTITIONS) if p not in members)
    before = ClusterView(0, members)
    after = before.with_member(joiner)
    assert after.epoch == 1
    sample = [f"k{i:08d}" for i in range(2000)]
    moved = sum(before.owner_of(k) != after.owner_of(k) for k in sample)
    expected = len(sample) / len(after.members)
    # Everything that moved went *to* the joiner (nothing reshuffles
    # between surviving members), and the volume is ≈K/S — the same
    # bound the reshard chaos cells gate on, wider here because small
    # member counts carry more vnode variance.
    for key in sample:
        if before.owner_of(key) != after.owner_of(key):
            assert after.owner_of(key) == joiner
    assert 0.2 * expected <= moved <= 3.0 * expected


@given(
    members=st.sets(st.integers(0, MAX_PARTITIONS - 1),
                    min_size=2, max_size=MAX_PARTITIONS)
    .map(lambda s: tuple(sorted(s))),
)
@settings(max_examples=50, deadline=None)
def test_removal_moves_only_the_leavers_keys(members):
    leaver = members[0]
    before = ClusterView(4, members)
    after = before.without_member(leaver)
    assert after.epoch == 5
    assert leaver not in after.members
    for key in (f"k{i:08d}" for i in range(1000)):
        if before.owner_of(key) == leaver:
            assert after.owner_of(key) != leaver
        else:  # survivors keep everything they had
            assert after.owner_of(key) == before.owner_of(key)


def test_member_transitions_validate():
    view = ClusterView(0, (0, 1))
    with pytest.raises(ConfigError):
        view.with_member(1)  # already on the ring
    with pytest.raises(ConfigError):
        view.without_member(3)  # never was
    with pytest.raises(ConfigError):
        ClusterView(0, ())  # empty ring
    with pytest.raises(ConfigError):
        HashRing((0,), vnodes=0)
    with pytest.raises(ConfigError):
        initial_view(4, (0, 7), 64)  # member outside the address space


# ----------------------------------------------------------------------
# KeyPools consistency
# ----------------------------------------------------------------------
@given(
    members=st.sets(st.integers(0, 5), min_size=1, max_size=5)
    .map(lambda s: tuple(sorted(s))),
    joiner=st.integers(0, 5),
)
@settings(max_examples=25, deadline=None)
def test_key_pools_agree_with_the_view_across_a_reshard(members, joiner):
    view = initial_view(6, members, 64)
    topology = Topology(2, 6, view)
    pools = KeyPools(topology, 20)
    assert pools.total_keys == len(members) * 20
    for partition in members:
        for key in pools.pool(partition):
            assert view.owner_of(key) == partition
    for partition in range(6):
        if partition not in members:
            assert pools.pool(partition) == []
    # After a join commits, the successor view re-places the same pools:
    # every key still has exactly one owner, drawn from the new members.
    if joiner in members:
        return
    after = view.with_member(joiner)
    for key in pools.all_keys():
        assert after.owner_of(key) in after.members


def test_pools_without_a_view_keep_the_seed_placement():
    """``view=None`` is the membership-off path: modulo placement,
    byte-identical to the pre-membership seed."""
    topology = Topology(2, 4)
    pools = KeyPools(topology, 10)
    import zlib
    for partition in range(4):
        for key in pools.pool(partition):
            assert zlib.crc32(key.encode()) % 4 == partition
