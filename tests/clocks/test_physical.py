"""Tests for the skewed-but-monotonic physical clock."""

import random

import pytest

from repro.common.config import ClockConfig
from repro.common.errors import SimulationError
from repro.sim.engine import Simulator
from repro.clocks.physical import PhysicalClock


def test_tracks_simulated_time_without_skew():
    sim = Simulator()
    clock = PhysicalClock(sim)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert clock.micros() == pytest.approx(1_000_000, abs=2)


def test_offset_shifts_reading():
    sim = Simulator()
    clock = PhysicalClock(sim, offset_us=500)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert clock.micros() == pytest.approx(1_000_500, abs=2)


def test_drift_scales_rate():
    sim = Simulator()
    clock = PhysicalClock(sim, drift_ppm=1000.0)  # exaggerated for the test
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert clock.micros() == pytest.approx(10_010_000, abs=5)


def test_strictly_monotonic_at_same_instant():
    sim = Simulator()
    clock = PhysicalClock(sim)
    readings = [clock.micros() for _ in range(100)]
    assert all(b > a for a, b in zip(readings, readings[1:]))


def test_monotonic_with_negative_offset_from_zero():
    sim = Simulator()
    clock = PhysicalClock(sim, offset_us=-100)
    first = clock.micros()
    second = clock.micros()
    assert second > first


def test_peek_does_not_bump():
    sim = Simulator()
    clock = PhysicalClock(sim)
    clock.micros()
    peek1 = clock.peek_micros()
    peek2 = clock.peek_micros()
    assert peek1 == peek2


def test_peek_never_below_last_read():
    sim = Simulator()
    clock = PhysicalClock(sim)
    forced = [clock.micros() for _ in range(50)][-1]
    assert clock.peek_micros() >= forced


def test_negative_rate_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        PhysicalClock(sim, drift_ppm=-2_000_000.0)


def test_sim_time_when_inverts_reading():
    sim = Simulator()
    clock = PhysicalClock(sim, offset_us=250, drift_ppm=50.0)
    target = 2_000_000
    wake_at = clock.sim_time_when(target)
    fired = []
    sim.schedule_at(wake_at, lambda: fired.append(clock.micros()))
    sim.run()
    assert fired[0] > target


def test_sim_time_when_never_in_past():
    sim = Simulator()
    clock = PhysicalClock(sim, offset_us=10_000)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert clock.sim_time_when(5) == sim.now


def test_sample_within_config_bounds():
    sim = Simulator()
    config = ClockConfig(max_offset_us=300, max_drift_ppm=10.0)
    rng = random.Random(1)
    for _ in range(50):
        clock = PhysicalClock.sample(sim, config, rng)
        assert -300 <= clock.offset_us <= 300
        assert -10.0 <= clock.drift_ppm <= 10.0 + 1e-9


def test_sampled_clocks_differ():
    sim = Simulator()
    rng = random.Random(1)
    config = ClockConfig()
    offsets = {
        PhysicalClock.sample(sim, config, rng).offset_us for _ in range(20)
    }
    assert len(offsets) > 1
