"""Tests for the Version record."""

from repro.common.types import version_order_key
from repro.storage.version import Version


def _version(ut=10, sr=0, dv=(1, 2, 3), key="k", value="v"):
    return Version(key=key, value=value, sr=sr, ut=ut, dv=dv)


def test_fields_match_paper_tuple():
    v = _version()
    assert (v.key, v.value, v.sr, v.ut) == ("k", "v", 0, 10)
    assert v.dv == (1, 2, 3)


def test_dv_is_immutable_tuple():
    v = Version(key="k", value=1, sr=0, ut=1, dv=[4, 5, 6])
    assert isinstance(v.dv, tuple)


def test_order_key_higher_timestamp_wins():
    older = _version(ut=10, sr=0)
    newer = _version(ut=11, sr=2)
    assert newer.order_key > older.order_key


def test_order_key_tie_lowest_source_replica_wins():
    """Section IV-B: ties broken by source replica id, lowest wins."""
    from_dc0 = _version(ut=10, sr=0)
    from_dc2 = _version(ut=10, sr=2)
    assert from_dc0.order_key > from_dc2.order_key


def test_order_key_matches_free_function():
    v = _version(ut=42, sr=1)
    assert v.order_key == version_order_key(42, 1)


def test_commit_vector_includes_own_timestamp():
    v = Version(key="k", value=1, sr=1, ut=100, dv=(5, 7, 9))
    assert v.commit_vector() == [5, 100, 9]


def test_commit_vector_keeps_larger_dv_entry():
    # Degenerate (cannot be produced by the protocols, which enforce
    # ut > max(dv)), but commit_vector must stay an upper bound.
    v = Version(key="k", value=1, sr=1, ut=100, dv=(5, 200, 9))
    assert v.commit_vector() == [5, 200, 9]


def test_identity_unique_per_source_and_time():
    a = _version(ut=10, sr=0)
    b = _version(ut=10, sr=1)
    c = _version(ut=11, sr=0)
    assert len({a.identity(), b.identity(), c.identity()}) == 3


def test_optimistic_flag_defaults_true():
    assert _version().optimistic
    v = Version(key="k", value=1, sr=0, ut=1, dv=(0,), optimistic=False)
    assert not v.optimistic


def test_repr_mentions_key_and_ut():
    text = repr(_version())
    assert "k" in text and "10" in text
