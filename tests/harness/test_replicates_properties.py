"""Property tests for AggregateStat against numpy reference math."""

import numpy as np
import scipy.stats  # noqa: F401  (pre-warm the lazy import in AggregateStat)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.replicates import AggregateStat

_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=20,
)


@given(_values)
@settings(max_examples=80)
def test_mean_matches_numpy(values):
    stat = AggregateStat(name="x", values=tuple(values))
    np.testing.assert_allclose(stat.mean, np.mean(values),
                               rtol=1e-9, atol=1e-6)


@given(_values)
@settings(max_examples=80)
def test_std_matches_numpy_ddof1(values):
    stat = AggregateStat(name="x", values=tuple(values))
    if len(values) < 2:
        assert stat.std == 0.0
    else:
        np.testing.assert_allclose(stat.std, np.std(values, ddof=1),
                                   rtol=1e-7, atol=1e-6)


@given(_values)
@settings(max_examples=80, deadline=None)
def test_extrema_and_ci_sign(values):
    stat = AggregateStat(name="x", values=tuple(values))
    assert stat.minimum == min(values)
    assert stat.maximum == max(values)
    assert stat.ci95_half_width >= 0.0
    # Floating-point summation can push the mean an ulp past an extremum.
    slack = 1e-9 * (abs(stat.minimum) + abs(stat.maximum) + 1.0)
    assert stat.minimum - slack <= stat.mean <= stat.maximum + slack


@given(_values)
@settings(max_examples=40)
def test_describe_mentions_name_and_n(values):
    stat = AggregateStat(name="metric_x", values=tuple(values))
    text = stat.describe()
    assert "metric_x" in text
    assert f"n={len(values)}" in text
