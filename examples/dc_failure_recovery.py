#!/usr/bin/env python3
"""The lost-update phenomenon and recovery after a DC failure (§III-B).

Walks through the paper's scenario step by step:

1. X is written in DC0 while the DC0<->DC1 link is down, so X reaches
   DC2 but never DC1.
2. A DC2 client reads X (optimistically visible!) and writes Y: an item
   *originated at a healthy DC* that causally depends on X.
3. DC0 fails for good.  DC1 now holds Y but can never receive X — the
   "lost update": a dependency that will never arrive.
4. Recovery discards X's unsurvivable copies *and* Y (the paper: "also
   updates from healthy DCs might get discarded"), re-syncs the
   survivors, resets dependent sessions, and the system resumes.

Run:  python examples/dc_failure_recovery.py
"""

from repro import (
    build_cluster,
    check_convergence_among,
    lost_update_exposure,
    recover_from_dc_failure,
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
)


class _Op:
    """Tiny synchronous wrapper over the callback API."""

    def __init__(self, built):
        self.built = built

    def _run(self, issue):
        done = {}
        issue(lambda reply: done.setdefault("reply", reply))
        deadline = self.built.sim.now + 5.0
        while "reply" not in done and self.built.sim.now < deadline:
            self.built.sim.run(until=self.built.sim.now + 0.01)
        if "reply" not in done:
            raise RuntimeError("operation blocked (expected under cuts)")
        return done["reply"]

    def get(self, client, key):
        return self._run(lambda cb: client.get(key, cb))

    def put(self, client, key, value):
        return self._run(lambda cb: client.put(key, value, cb))


def main() -> None:
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=50, protocol="pocc"),
        workload=WorkloadConfig(clients_per_partition=1),
        seed=11,
    )
    built = build_cluster(config)
    ops = _Op(built)
    key_x = built.pools.key(0, 0)
    key_y = built.pools.key(1, 0)

    def client(dc, partition=0):
        for c in built.clients:
            if (c.address.dc, c.address.partition) == (dc, partition):
                return c
        raise LookupError

    print("Step 1: cut DC0 <-> DC1, write X in DC0")
    built.faults.partition_dcs([0], [1])
    ops.put(client(0), key_x, "X")
    built.sim.run(until=built.sim.now + 0.3)

    print("Step 2: a DC2 client reads X and writes Y (Y depends on X)")
    c2 = client(2)
    assert ops.get(c2, key_x).value == "X"
    ops.put(c2, key_y, "Y")
    built.sim.run(until=built.sim.now + 0.3)

    exposure = lost_update_exposure(built.servers, built.topology,
                                    failed_dc=0)
    print(f"        exposure census: {exposure} unsurvivable DC0 versions")

    print("Step 3: DC0 fails permanently (isolated)")
    built.faults.isolate_dc(0, range(3))

    diverged = check_convergence_among(built.servers, [1, 2],
                                       built.topology.num_partitions)
    print(f"        survivors diverge on {len(diverged)} key(s) "
          "before recovery")

    print("Step 4: run the lost-update discard recovery")
    report = recover_from_dc_failure(built.servers, built.topology,
                                     failed_dc=0, clients=built.clients)
    print("        " + report.summary_text())

    diverged = check_convergence_among(built.servers, [1, 2],
                                       built.topology.num_partitions)
    print(f"        survivors diverge on {len(diverged)} key(s) "
          "after recovery")

    print("Step 5: survivors keep operating causally")
    c1 = client(1)
    ops.put(c1, key_x, "X-prime")
    built.sim.run(until=built.sim.now + 0.5)
    value = ops.get(c2, key_x).value
    print(f"        DC1 wrote X-prime; DC2 reads: {value!r}")
    assert value == "X-prime"

    healthy_origin = report.dependents_discarded_by_origin.get(2, 0)
    print()
    print(f"Note the paper's caveat in action: {healthy_origin} discarded "
          "version(s) originated at the *healthy* DC2 —")
    print("optimistic visibility let DC2 build on X before X was stable, "
          "so DC0's failure cost DC2's write too.")


if __name__ == "__main__":
    main()
