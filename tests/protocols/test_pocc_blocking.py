"""POCC blocking semantics: the client-assisted lazy dependency resolution.

These tests exercise the waiting conditions of Algorithm 2 (lines 2, 6, 7)
directly and reproduce the paper's Section III-B blocking example with a
real network partition.
"""

import pytest

import helpers
from repro.metrics.collectors import (
    BLOCK_GET_VV,
    BLOCK_PUT_CLOCK,
    BLOCK_PUT_DEPS,
)


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="pocc")


def _arm(built):
    built.metrics.arm(built.sim.now)


def test_get_with_satisfied_deps_does_not_block(built):
    _arm(built)
    client = helpers.client_at(built, dc=0)
    helpers.get(built, client, helpers.key_on_partition(built, 0))
    stats = built.metrics.blocking[BLOCK_GET_VV]
    assert stats.attempts == 1
    assert stats.blocked == 0


def test_get_blocks_until_heartbeat_covers_dependency(built):
    """A read dependency ahead of the server's VV stalls the GET until a
    heartbeat (or update) from the dependency's DC passes it."""
    _arm(built)
    client = helpers.client_at(built, dc=1)
    server = built.servers[built.topology.server(1, 0)]
    # Fabricate a dependency 5 ms ahead of what DC1 received from DC0.
    future_ts = server.vv[0] + 5_000
    client.rdv[0] = future_ts
    reply = helpers.get(built, client, helpers.key_on_partition(built, 0),
                        timeout_s=2.0)
    assert reply is not None
    stats = built.metrics.blocking[BLOCK_GET_VV]
    assert stats.blocked == 1
    assert stats.attempts == 1
    # Wait is bounded by heartbeat interval + WAN latency + skew.
    assert 0 < stats.mean_block_time_s < 0.2
    assert server.vv[0] >= future_ts


def test_local_dependency_never_blocks(built):
    """Line 2 skips the local entry: local dependencies are trivially
    satisfied."""
    _arm(built)
    client = helpers.client_at(built, dc=0)
    server = built.servers[built.topology.server(0, 0)]
    client.rdv[0] = server.vv[0] + 50_000  # local entry, huge
    helpers.get(built, client, helpers.key_on_partition(built, 0),
                timeout_s=0.5)
    assert built.metrics.blocking[BLOCK_GET_VV].blocked == 0


def test_put_dependency_wait_blocks_and_resumes(built):
    """Algorithm 2 line 6 (enabled in the paper's evaluation)."""
    _arm(built)
    client = helpers.client_at(built, dc=1)
    server = built.servers[built.topology.server(1, 0)]
    client.dv[0] = server.vv[0] + 5_000
    reply = helpers.put(built, client, helpers.key_on_partition(built, 0),
                        "v", timeout_s=2.0)
    stats = built.metrics.blocking[BLOCK_PUT_DEPS]
    assert stats.blocked == 1
    assert reply.ut > client.rdv[0]


def test_put_dependency_wait_disabled_skips_check():
    built = helpers.make_cluster(
        protocol="pocc",
        cluster_overrides={
            "protocol_config": __import__(
                "repro.common.config", fromlist=["ProtocolConfig"]
            ).ProtocolConfig(put_dependency_wait=False),
        },
    )
    built.metrics.arm(built.sim.now)
    client = helpers.client_at(built, dc=1)
    server = built.servers[built.topology.server(1, 0)]
    client.dv[0] = server.vv[0] + 5_000
    helpers.put(built, client, helpers.key_on_partition(built, 0), "v",
                timeout_s=2.0)
    assert built.metrics.blocking[BLOCK_PUT_DEPS].attempts == 0
    # The clock wait (line 7) is NOT optional and still applies.
    assert built.metrics.blocking[BLOCK_PUT_CLOCK].attempts == 1


def test_put_clock_wait_produces_dominating_timestamp(built):
    """Algorithm 2 line 7: the new version's ut exceeds max(DV_c)."""
    _arm(built)
    client = helpers.client_at(built, dc=0)
    server = built.servers[built.topology.server(0, 0)]
    # A *local* dependency slightly in the server's future (e.g. written
    # through a DC-local peer whose clock runs ahead): line 6 skips the
    # local entry, so only the clock wait of line 7 can order the PUT.
    future = server.clock.peek_micros() + 2_000
    client.dv[0] = future
    reply = helpers.put(built, client, helpers.key_on_partition(built, 0),
                        "v", timeout_s=2.0)
    assert reply.ut > future
    assert built.metrics.blocking[BLOCK_PUT_CLOCK].blocked == 1


def test_blocked_get_holds_no_cpu(built):
    """The paper's efficiency argument: a stalled operation yields the CPU."""
    _arm(built)
    client = helpers.client_at(built, dc=1)
    server = built.servers[built.topology.server(1, 0)]
    client.rdv[0] = server.vv[0] + 3_000
    busy_before = server.cpu.busy_time_s

    result = helpers.OpResult()
    client.get(helpers.key_on_partition(built, 0), result)
    built.sim.run(until=built.sim.now + 0.0009)  # while blocked
    busy_during = server.cpu.busy_time_s - busy_before
    # Only the initial GET handler charge, nothing accrues while waiting.
    assert busy_during <= server.config.service.get_s + 1e-9
    built.sim.run(until=built.sim.now + 1.0)
    assert result.done


def test_paper_blocking_example_with_partition(built):
    """Section III-B: X -> Y, Y reaches DC1 but X is cut off; a DC1 client
    that read Y blocks on GET(x) until the partition heals."""
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)

    # Cut DC0 <-> DC1 only; DC2 still hears from both.
    built.faults.partition_dcs([0], [1])

    # X is written in DC0 (partition 0); it reaches DC2 but not DC1.
    writer0 = helpers.client_at(built, dc=0)
    x_reply = helpers.put(built, writer0, key_x, "X")
    helpers.settle(built, 0.3)

    # A DC2 client reads X and writes Y (so Y depends on X), partition 1.
    client2 = helpers.client_at(built, dc=2)
    got_x = helpers.get(built, client2, key_x)
    assert got_x.value == "X"
    helpers.put(built, client2, key_y, "Y")
    helpers.settle(built, 0.3)

    # A DC1 client reads Y (arrived from DC2) -> establishes the dependency
    # on X, which DC1 has never received.
    client1 = helpers.client_at(built, dc=1, partition=1)
    got_y = helpers.get(built, client1, key_y)
    assert got_y.value == "Y"
    assert client1.rdv[0] >= x_reply.ut

    # GET(x) at DC1 must now block for as long as the partition lasts...
    result = helpers.OpResult()
    client1.get(key_x, result)
    built.sim.run(until=built.sim.now + 1.0)
    assert not result.done, "GET must stall while the dependency is missing"

    # ...and resolve with the fresh value once it heals.
    built.faults.heal_all()
    built.sim.run(until=built.sim.now + 1.0)
    assert result.done
    assert result.reply.value == "X"
