"""Render reproduced figures as a markdown report (EXPERIMENTS.md helper)."""

from __future__ import annotations

from typing import Iterable

from repro.harness.figures import FigureData

#: What the paper reports for each figure, for side-by-side reading.
PAPER_CLAIMS: dict[str, str] = {
    "1a": "POCC and Cure* achieve basically the same throughput at every "
          "partition count (2 to 32).",
    "1b": "POCC's average response time is slightly below Cure*'s until "
          "the saturation knee (~0.65 Mops/s on their testbed), slightly "
          "above at extreme load.",
    "1c": "Throughput decreases with write intensity for both; POCC's "
          "maximum loss vs Cure* is ~10% (at 2:1).",
    "2a": "POCC blocking probability < 1e-3 up to ~0.6 Mops/s (so the "
          "99.999th latency percentile is unaffected); blocking time is "
          "microseconds at moderate load; both grow sharply only at "
          "saturation.",
    "2b": "Cure* returns old/unmerged items increasingly often with load: "
          "~15% old / ~10% unmerged near saturation, up to ~30% when "
          "overloaded.",
    "3a": "Comparable throughput at small transactions; POCC up to ~15% "
          "better when transactions touch most partitions.",
    "3b": "Both systems reach a similar maximum; past the peak POCC's "
          "throughput drops (blocking) while Cure*'s plateaus; RO-TX "
          "response times surge for POCC under overload.",
    "3c": "Blocking probability peaks at the throughput peak; blocking "
          "time is high at low load (waiting on heartbeats), dips at the "
          "peak, then grows very large under overload.",
    "3d": "POCC's % of old items in transactional reads is ~2 orders of "
          "magnitude below Cure*'s old/unmerged percentages.",
}


def figure_markdown(data: FigureData) -> str:
    """One figure as a markdown section with a data table."""
    lines = [f"### Figure {data.figure_id} — {data.title}", ""]
    claim = PAPER_CLAIMS.get(data.figure_id)
    if claim:
        lines += [f"**Paper:** {claim}", ""]
    names = list(data.series)
    lines.append("| " + data.x_label + " | " + " | ".join(names) + " |")
    lines.append("|" + "---|" * (len(names) + 1))
    xs = sorted({x for pts in data.series.values() for x, _ in pts})
    lookup = {name: dict(points) for name, points in data.series.items()}
    for x in xs:
        cells = [f"{x:g}"]
        for name in names:
            y = lookup[name].get(x)
            cells.append("-" if y is None else f"{y:.4g}")
        lines.append("| " + " | ".join(cells) + " |")
    if data.notes:
        lines += ["", f"*{data.notes}*"]
    lines.append("")
    return "\n".join(lines)


def render_markdown(figures: Iterable[FigureData], scale: str) -> str:
    """A full markdown report over a collection of reproduced figures."""
    parts = [
        "# Reproduced figures",
        "",
        f"Scale preset: `{scale}` (see `repro.harness.scales`).  Absolute "
        "numbers are simulator-scale; compare shapes against the paper's "
        "claims quoted per figure.",
        "",
    ]
    for data in figures:
        parts.append(figure_markdown(data))
    return "\n".join(parts)
