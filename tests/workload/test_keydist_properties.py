"""Property tests for the key-rank choosers (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.keydist import (
    HotspotRanks,
    UniformRanks,
    ZipfRanks,
    make_rank_chooser,
)

_sizes = st.integers(min_value=1, max_value=500)
_seeds = st.integers(min_value=0, max_value=2**31)
_fractions = st.floats(min_value=0.01, max_value=1.0,
                       allow_nan=False, allow_infinity=False)


@given(_sizes, _seeds, st.floats(min_value=0.0, max_value=1.5))
@settings(max_examples=60)
def test_zipf_samples_in_bounds(n, seed, theta):
    chooser = ZipfRanks(n, theta, random.Random(seed))
    assert all(0 <= chooser.sample() < n for _ in range(50))


@given(_sizes, _seeds)
@settings(max_examples=60)
def test_uniform_samples_in_bounds(n, seed):
    chooser = UniformRanks(n, random.Random(seed))
    assert all(0 <= chooser.sample() < n for _ in range(50))


@given(_sizes, _seeds, _fractions, _fractions)
@settings(max_examples=60)
def test_hotspot_samples_in_bounds(n, seed, hot_ops, hot_keys):
    chooser = HotspotRanks(n, hot_ops, hot_keys, random.Random(seed))
    assert all(0 <= chooser.sample() < n for _ in range(50))


@given(_seeds, _fractions, _fractions)
@settings(max_examples=30)
def test_hotspot_hot_set_never_empty(seed, hot_ops, hot_keys):
    chooser = HotspotRanks(1, hot_ops, hot_keys, random.Random(seed))
    assert chooser.sample() == 0


@given(st.sampled_from(["zipf", "uniform", "hotspot"]), _sizes, _seeds)
@settings(max_examples=60)
def test_factory_output_same_seed_is_deterministic(name, n, seed):
    a = make_rank_chooser(name, n, random.Random(seed))
    b = make_rank_chooser(name, n, random.Random(seed))
    assert [a.sample() for _ in range(25)] == [b.sample() for _ in range(25)]
