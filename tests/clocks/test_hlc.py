"""Tests for the hybrid logical clock extension."""

from repro.sim.engine import Simulator
from repro.clocks.hlc import HybridLogicalClock
from repro.clocks.physical import PhysicalClock


def _hlc(offset_us=0):
    sim = Simulator()
    return sim, HybridLogicalClock(PhysicalClock(sim, offset_us=offset_us))


def test_now_is_monotonic_at_fixed_instant():
    _, hlc = _hlc()
    readings = [hlc.now() for _ in range(100)]
    assert all(b > a for a, b in zip(readings, readings[1:]))


def test_logical_component_resets_when_physical_advances():
    sim, hlc = _hlc()
    for _ in range(5):
        hlc.now()
    sim.schedule(1.0, lambda: None)
    sim.run()
    physical, logical = HybridLogicalClock.unpack(hlc.now())
    assert logical == 0
    assert physical >= 1_000_000


def test_update_jumps_past_remote_timestamp():
    _, hlc = _hlc()
    remote = HybridLogicalClock._pack(50_000_000, 7)
    merged = hlc.update(remote)
    assert merged > remote
    physical, logical = HybridLogicalClock.unpack(merged)
    assert physical == 50_000_000
    assert logical == 8


def test_update_with_stale_remote_still_advances():
    sim, hlc = _hlc()
    local_before = hlc.now()
    stale = HybridLogicalClock._pack(1, 0)
    assert hlc.update(stale) > local_before


def test_update_equal_physical_takes_max_logical():
    _, hlc = _hlc()
    t1 = hlc.now()
    physical, logical = HybridLogicalClock.unpack(t1)
    remote = HybridLogicalClock._pack(physical, logical + 10)
    merged = hlc.update(remote)
    _, merged_logical = HybridLogicalClock.unpack(merged)
    assert merged_logical == logical + 11


def test_pack_unpack_roundtrip():
    packed = HybridLogicalClock._pack(123_456, 42)
    assert HybridLogicalClock.unpack(packed) == (123_456, 42)


def test_ordering_consistent_with_physical_time():
    sim, hlc = _hlc()
    early = hlc.now()
    sim.schedule(2.0, lambda: None)
    sim.run()
    late = hlc.now()
    assert late > early
