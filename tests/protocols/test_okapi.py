"""Okapi* semantics: HLC stamping, universal-stability visibility gating,
and the two-scalar RO-TX snapshot boundaries."""

import pytest

import helpers
from repro.clocks.hlc import HybridLogicalClock
from repro.protocols import messages as m
from repro.storage.version import Version


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="okapi")


# ----------------------------------------------------------------------
# Hybrid-clock stamping
# ----------------------------------------------------------------------

def test_put_then_get_local(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "local")
    reply = helpers.get(built, client, key)
    assert reply.value == "local"  # local items immediately visible


def test_stamps_strictly_increase_and_dominate_dependencies(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    first = helpers.put(built, client, key, 1)
    assert client.dt == first.ut
    second = helpers.put(built, client, key, 2)
    assert second.ut > first.ut  # ut > the client's dependency time


def test_put_never_waits_for_the_physical_clock(built):
    """The HLC's logical component jumps past a future dependency time, so
    a PUT completes immediately where POCC/Cure*/GentleRain* would park
    until the server clock passes it (Algorithm 2 line 7)."""
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    server = built.servers[built.topology.server(0, 0)]
    ahead_s = 0.5
    future = server.hlc.peek() + (int(ahead_s * 1_000_000)
                                  << HybridLogicalClock.LOGICAL_BITS)
    client.dt = future
    started = built.sim.now
    reply = helpers.put(built, client, key, "fast", timeout_s=1.0)
    assert reply.ut > future  # still dominates the dependency...
    assert built.sim.now - started < ahead_s / 2  # ...without the wait


def test_put_records_zero_blocking(built):
    built.metrics.arm(built.sim.now)
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    for i in range(5):
        helpers.put(built, client, key, i)
    for cause, stats in built.metrics.blocking.items():
        assert stats.blocked == 0, cause


# ----------------------------------------------------------------------
# Universal stabilization
# ----------------------------------------------------------------------

def test_ust_advances_everywhere(built):
    helpers.settle(built, 0.5)
    for address, server in built.servers.items():
        assert server.ust > 0, f"UST never advanced on {address}"


def test_ust_is_lower_bound_of_every_nodes_knowledge(built):
    """ust <= min(VV) on every node of every DC: the defining property of
    universal stability (everything below it is received everywhere)."""
    helpers.settle(built, 0.5)
    for server in built.servers.values():
        assert server.ust <= min(server.vv)


def test_ust_roughly_uniform_across_dcs(built):
    """The availability argument: visibility horizons agree across DCs up
    to gossip/broadcast delivery lag (vs Cure's per-DC GSS, which diverges
    by the full WAN asymmetry)."""
    helpers.settle(built, 1.0)
    usts = [server.ust for server in built.servers.values()]
    spread_us = (max(usts) - min(usts)) >> HybridLogicalClock.LOGICAL_BITS
    # A few stabilization rounds + one WAN hop, not the ~70 ms asymmetry.
    assert spread_us < 60_000


def _inject_remote_version(built, dc, key, value, ahead_s=0.3):
    """Deliver a remote version to one DC through the real replication
    handler, stamped ``ahead_s`` beyond the current UST so it stays
    unstable (deterministically) until stabilization catches up."""
    server = built.servers[built.topology.server(dc, 0)]
    ut = server.ust + (int(ahead_s * 1_000_000)
                       << HybridLogicalClock.LOGICAL_BITS)
    version = Version(key=key, value=value, sr=0, ut=ut, dv=(0,))
    server.apply_replicate(m.Replicate(version=version))
    return server, version


def test_remote_version_hidden_until_universally_stable(built):
    helpers.settle(built, 0.5)
    key = helpers.key_on_partition(built, 0)
    server1, version = _inject_remote_version(built, dc=1, key=key,
                                              value="fresh", ahead_s=0.3)
    assert server1.store.freshest(key).value == "fresh"  # received...
    reader = helpers.client_at(built, dc=1)
    reply = helpers.get(built, reader, key, timeout_s=0.2)
    assert reply.value == 0, "non-stable remote version must stay hidden"

    # Once clocks pass the version's timestamp, heartbeats raise every
    # node's LST past it and the gossip rounds make it universally stable.
    helpers.settle(built, 0.6)
    reply = helpers.get(built, reader, key)
    assert reply.value == "fresh"


def test_get_merges_client_observed_ust(built):
    """A client that saw a fresher UST elsewhere lifts the server's
    horizon instead of blocking (the non-blocking read path)."""
    helpers.settle(built, 0.5)
    key = helpers.key_on_partition(built, 0)
    server1, version = _inject_remote_version(built, dc=1, key=key,
                                              value="fresh", ahead_s=0.3)
    reader = helpers.client_at(built, dc=1)
    reader.ust_seen = version.ut  # as if read stable at another replica
    reply = helpers.get(built, reader, key, timeout_s=0.2)
    assert reply.value == "fresh"
    assert server1.ust >= version.ut


def test_stale_read_counts_old_and_unmerged(built):
    helpers.settle(built, 0.5)
    built.metrics.arm(built.sim.now)
    key = helpers.key_on_partition(built, 0)
    _inject_remote_version(built, dc=1, key=key, value="fresh")
    reader = helpers.client_at(built, dc=1)
    helpers.get(built, reader, key, timeout_s=0.2)
    stale = built.metrics.get_staleness
    assert stale.old_reads == 1
    assert stale.unmerged_reads == 1


def test_visibility_lag_sampled_at_stability_not_receipt(built):
    built.metrics.arm(built.sim.now)
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "x")
    helpers.settle(built, 1.0)
    lag = built.metrics.visibility_lag
    assert lag.count > 0
    # Universal stability needs the slowest WAN delivery (70 ms one-way)
    # plus the gossip round back — well beyond POCC's receive-and-show.
    assert lag.mean > 0.07


# ----------------------------------------------------------------------
# Session guarantees
# ----------------------------------------------------------------------

def test_read_your_writes_across_partitions(built):
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    helpers.put(built, client, key_a, "a")
    put_b = helpers.put(built, client, key_b, "b")
    reply = helpers.get(built, client, key_b)
    assert reply.ut == put_b.ut


def test_lww_convergence_across_dcs(built):
    key = helpers.key_on_partition(built, 0)
    for dc in range(3):
        helpers.put(built, helpers.client_at(built, dc=dc), key, f"dc{dc}")
    helpers.settle(built, 1.0)
    heads = {
        built.servers[built.topology.server(dc, 0)].store.freshest(key)
        .identity()
        for dc in range(3)
    }
    assert len(heads) == 1


# ----------------------------------------------------------------------
# RO-TX snapshot boundaries
# ----------------------------------------------------------------------

def test_tx_snapshot_at_stable_cut_hides_fresh_remote(built):
    """Transactions read below the universal stable time: a received but
    non-stable remote write is not in the snapshot (POCC would return it)."""
    helpers.settle(built, 0.5)
    key = helpers.key_on_partition(built, 0)
    _inject_remote_version(built, dc=1, key=key, value="fresh")
    reader = helpers.client_at(built, dc=1, partition=1)
    reply = helpers.ro_tx(built, reader, [key], timeout_s=1.0)
    assert reply.versions[0].value == 0  # preloaded, not "fresh"


def test_tx_local_cut_includes_own_recent_write(built):
    """The local cut l = max(VV[m], dt) admits the session's own fresh
    (not yet stable) writes — read-your-writes inside transactions."""
    helpers.settle(built, 0.5)
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    put_a = helpers.put(built, client, key_a, "mine-a")
    put_b = helpers.put(built, client, key_b, "mine-b")
    reply = helpers.ro_tx(built, client, [key_a, key_b], timeout_s=1.0)
    got = {item.key: item.ut for item in reply.versions}
    assert got[key_a] == put_a.ut
    assert got[key_b] == put_b.ut


def test_tx_excludes_other_sessions_unstable_local_write_beyond_cut(built):
    """A *different* session's fresh local write on another partition sits
    beyond both cuts (not stable, not in this client's past): the snapshot
    returns the stable version instead of tearing."""
    helpers.settle(built, 0.5)
    writer = helpers.client_at(built, dc=0, partition=1)
    reader = helpers.client_at(built, dc=0, partition=0)
    key = helpers.key_on_partition(built, 1)
    put_reply = helpers.put(built, writer, key, "fresh-local")
    reply = helpers.ro_tx(built, reader, [key], timeout_s=1.0)
    item = reply.versions[0]
    if item.ut != put_reply.ut:  # beyond the coordinator's local cut
        assert item.value == 0  # the stable preloaded version, no tear
    helpers.settle(built, 1.0)
    reply = helpers.ro_tx(built, reader, [key], timeout_s=1.0)
    assert reply.versions[0].ut == put_reply.ut  # visible once stable


def test_tx_never_blocks(built):
    built.metrics.arm(built.sim.now)
    helpers.settle(built, 0.3)
    client = helpers.client_at(built, dc=2)
    keys = [helpers.key_on_partition(built, 0),
            helpers.key_on_partition(built, 1)]
    helpers.put(built, client, keys[0], "w")
    helpers.ro_tx(built, client, keys, timeout_s=1.0)
    for cause, stats in built.metrics.blocking.items():
        assert stats.blocked == 0, cause


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------

def test_gc_horizon_aggregated_across_partitions(built):
    """A coordinator's in-flight RO-TX caps the *whole DC's* GC horizon:
    the slice may be served on another partition whose UST already passed
    the snapshot's stable cut, so a local-only horizon could collect the
    very version the pending slice must return."""
    helpers.settle(built, 0.5)
    coordinator = built.servers[built.topology.server(0, 0)]
    slice_server = built.servers[built.topology.server(0, 1)]
    old_cut = coordinator.ust // 2
    coordinator._active_tx[999] = {"tv": [old_cut, coordinator.vv[0]],
                                   "awaiting": 1, "versions": [],
                                   "client": None, "op_id": 0}
    assert coordinator._gc_report_vector() == [old_cut]
    # Run the DC's aggregated GC round with the transaction open.
    for server in (coordinator, slice_server):
        server._gc_tick()
    helpers.settle(built, 0.05)
    del coordinator._active_tx[999]
    # Every server of the DC applied a horizon at or below the snapshot
    # cut — including the slice partition, whose own UST is far past it.
    assert slice_server.ust > old_cut
    assert slice_server.store.gc_stats.last_gv[0] <= old_cut


def test_gc_retains_freshest_stable_version(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    for i in range(6):
        helpers.put(built, client, key, i)
        helpers.settle(built, 0.05)
    helpers.settle(built, 1.5)  # several GC rounds past stabilization
    for dc in range(3):
        server = built.servers[built.topology.server(dc, 0)]
        chain = server.store.chain(key)
        assert len(chain) <= 2  # old stable versions collected
        assert chain.head().value == 5  # the LWW winner survives
