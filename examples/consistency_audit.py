#!/usr/bin/env python3
"""Audit every protocol with the independent causal-consistency checker.

The checker tracks precise per-key causal pasts from observed reads-from
and program order — no protocol metadata — and flags reads that travel
backwards in causal time, broken transaction snapshots, and diverged
replicas.

POCC, Cure* and HA-POCC must come out clean.  The ``eventual`` strawman
must not: under a jittery WAN and a write-heavy workload it returns stale
dependents, and the checker prints the concrete counterexamples.

Run:  python examples/consistency_audit.py
"""

from repro import (
    CausalChecker,
    ClusterConfig,
    ExperimentConfig,
    LatencyConfig,
    WorkloadConfig,
    build_cluster,
)
from repro.harness.experiment import run_experiment


def audit(protocol: str, seeds=(1, 2, 3)) -> None:
    total_violations = 0
    total_reads = 0
    divergences = 0
    example = None
    for seed in seeds:
        config = ExperimentConfig(
            cluster=ClusterConfig(
                num_dcs=3,
                num_partitions=2,
                keys_per_partition=8,          # hot keys: real collisions
                protocol=protocol,
                latency=LatencyConfig(jitter_ratio=0.5),  # messy WAN
            ),
            workload=WorkloadConfig(kind="get_put", gets_per_put=2,
                                    clients_per_partition=3,
                                    think_time_s=0.0),
            warmup_s=0.1,
            duration_s=1.5,
            seed=seed,
            verify=True,
            name=f"audit-{protocol}-{seed}",
        )
        built = build_cluster(config)
        result = run_experiment(config, built=built)
        total_violations += result.verification["violations"]
        total_reads += result.verification["reads_checked"]
        divergences += result.divergences
        if example is None and built.checker.violations:
            example = built.checker.violations[0]

    verdict = "PASS" if total_violations == 0 else "FAIL"
    print(f"{protocol:10s} {verdict}: {total_violations} violations over "
          f"{total_reads} reads, {divergences} diverged keys")
    if example is not None:
        print(f"           e.g. {example.describe()}")


def main() -> None:
    print("Causal-consistency audit (checker is protocol-independent):\n")
    for protocol in ("pocc", "cure", "ha_pocc", "eventual"):
        audit(protocol)
    print("\nThe eventual baseline exists precisely to show the checker "
          "has teeth; the paper's protocols pass it.")
    # Demonstrate the checker's API directly, too:
    checker = CausalChecker()
    checker.register_client("c1")
    checker.on_write("c1", "x", ("x", 0, 10), 1.0)
    checker.on_read("c1", "x", ("x", 0, 5), 2.0)  # older than own write!
    assert not checker.ok
    print(f"\nDirect API demo -> {checker.violations[0].describe()}")


if __name__ == "__main__":
    main()
