"""Tests for the staleness aggregate (Section V-B definitions)."""

import pytest

from repro.metrics.staleness import StalenessAggregate


def test_fresh_reads_produce_zero_percentages():
    agg = StalenessAggregate()
    for _ in range(10):
        agg.record(0, 0)
    assert agg.pct_old == 0.0
    assert agg.pct_unmerged == 0.0
    assert agg.avg_fresher_versions == 0.0


def test_old_and_unmerged_are_independent_counters():
    agg = StalenessAggregate()
    agg.record(0, 2)   # unmerged but not old (fresh local head, merging tail)
    agg.record(3, 0)   # old but (degenerately) not unmerged
    agg.record(0, 0)
    assert agg.reads == 3
    assert agg.pct_old == pytest.approx(100.0 / 3)
    assert agg.pct_unmerged == pytest.approx(100.0 / 3)


def test_averages_only_over_affected_reads():
    agg = StalenessAggregate()
    agg.record(2, 0)
    agg.record(4, 0)
    agg.record(0, 0)
    assert agg.avg_fresher_versions == pytest.approx(3.0)


def test_unmerged_average():
    agg = StalenessAggregate()
    agg.record(0, 1)
    agg.record(0, 3)
    assert agg.avg_unmerged_versions == pytest.approx(2.0)


def test_merge():
    a, b = StalenessAggregate(), StalenessAggregate()
    a.record(1, 1)
    b.record(0, 0)
    b.record(3, 2)
    a.merge(b)
    assert a.reads == 3
    assert a.old_reads == 2
    assert a.fresher_versions_total == 4
    assert a.unmerged_versions_total == 3


def test_summary_keys():
    summary = StalenessAggregate().summary()
    assert set(summary) == {
        "reads", "pct_old", "pct_unmerged",
        "avg_fresher_versions", "avg_unmerged_versions",
    }
