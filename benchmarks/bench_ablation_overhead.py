"""Ablation — communication overhead: POCC vs Cure* on identical workloads.

Section I claims OCC "reduces the communication overhead" by dropping the
continuously running stabilization protocol.  Same seed, same workload:
compare message and byte counts per completed operation."""

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.experiment import run_experiment


def _config(protocol: str) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=4,
                              keys_per_partition=200, protocol=protocol),
        workload=WorkloadConfig(kind="get_put", gets_per_put=4,
                                clients_per_partition=4,
                                think_time_s=0.010),
        warmup_s=0.4,
        duration_s=1.6,
        name=f"overhead-{protocol}",
    )


def test_ablation_communication_overhead(benchmark):
    results = {}

    def run() -> None:
        for protocol in ("pocc", "cure", "gentlerain"):
            results[protocol] = run_experiment(_config(protocol))

    benchmark.pedantic(run, rounds=1, iterations=1)

    pocc, cure = results["pocc"], results["cure"]
    pocc_msgs_per_op = pocc.network_messages / pocc.total_ops
    cure_msgs_per_op = cure.network_messages / cure.total_ops

    # Cure* sends strictly more messages (stabilization rounds) and more
    # bytes per completed operation.
    assert cure_msgs_per_op > pocc_msgs_per_op
    assert cure.bytes_per_op > pocc.bytes_per_op

    # But the *WAN* traffic (replication + heartbeats) is equivalent —
    # stabilization is intra-DC.
    pocc_wan = pocc.inter_dc_bytes / pocc.total_ops
    cure_wan = cure.inter_dc_bytes / cure.total_ops
    assert abs(pocc_wan - cure_wan) / max(pocc_wan, cure_wan) < 0.20

    # GentleRain*'s scalar metadata makes each replicated version and
    # request smaller than the vector protocols'.
    gentlerain = results["gentlerain"]
    assert gentlerain.bytes_per_op < cure.bytes_per_op
