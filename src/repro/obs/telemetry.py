"""The in-process telemetry registry behind ``/metrics``.

One :class:`Telemetry` instance per live process, shared by every hosted
server and the transport.  Three instrument kinds, chosen so the hot
paths stay near-free when nobody scrapes:

* **counters** — pre-created :class:`Counter` cells; the hot path is one
  attribute increment.  Per-message-kind counters are created lazily on
  first sight of a kind (one dict lookup per message).
* **gauges** — *pull model*: a callback registered once and evaluated
  only at scrape time, reading state the process keeps anyway (version
  vectors, wait-queue lengths, batch buffers, link-fault counters).
  Zero hot-path cost.
* **summaries** — :class:`repro.metrics.histogram.LogHistogram` cells
  observed on the hot path where no pull-side state exists (WAL fsync
  latency, visibility lag).  O(1) per observation.

Rendering is Prometheus text-exposition v0.0.4 (``render_prometheus``)
plus a JSON snapshot (``snapshot``) for ``/vars.json`` and ``repro-top``.
Families are declared up front so every endpoint exposes the same family
set even before traffic arrives — the CI scrape gates on presence.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable

from repro.metrics.histogram import LogHistogram

#: label tuples are ``(("dc", "0"), ("partition", "1"))`` — hashable,
#: deterministic render order.
Labels = tuple[tuple[str, str], ...]

#: Client-facing request kinds folded into ``repro_client_ops_total``
#: (the throughput family) in addition to the per-kind message counter.
CLIENT_OP_KINDS = {
    "GetReq": "get",
    "PutReq": "put",
    "CopsPutReq": "put",
    "RoTxReq": "tx",
}

SUMMARY_QUANTILES = (("0.5", 50), ("0.95", 95), ("0.99", 99))


class Counter:
    """One monotone cell; hot paths hold a reference and increment."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Telemetry:
    """Registry of counters, gauge callbacks and histogram summaries."""

    def __init__(self) -> None:
        #: family name -> (kind, help text); declared once, rendered as
        #: ``# HELP`` / ``# TYPE`` whether or not samples exist yet.
        self._families: dict[str, tuple[str, str]] = {}
        self._counters: dict[tuple[str, Labels], Counter] = {}
        self._gauges: dict[tuple[str, Labels], Callable[[], float]] = {}
        self._summaries: dict[tuple[str, Labels], LogHistogram] = {}
        #: Dynamic-label collectors: each yields (name, labels, value)
        #: samples at scrape time (e.g. one per live link fault).
        self._collectors: list[Callable[[], Iterable[tuple]]] = []
        self._message_counters: dict[str, Counter] = {}
        self._client_op_counters: dict[str, Counter] = {}
        self._started_monotonic = time.monotonic()
        self.family("repro_messages_total", "counter",
                    "Protocol messages dispatched, by message kind.")
        self.family("repro_client_ops_total", "counter",
                    "Client operations received (get/put/tx).")
        for kind in ("get", "put", "tx"):
            self._client_op_counters[kind] = self.counter(
                "repro_client_ops_total", labels=(("kind", kind),)
            )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def family(self, name: str, kind: str, help_text: str = "") -> None:
        """Declare a metric family (idempotent; first declaration wins)."""
        if name not in self._families:
            self._families[name] = (kind, help_text)

    def counter(self, name: str, labels: Labels = (),
                help_text: str = "") -> Counter:
        self.family(name, "counter", help_text)
        key = (name, labels)
        cell = self._counters.get(key)
        if cell is None:
            self._counters[key] = cell = Counter()
        return cell

    def gauge(self, name: str, fn: Callable[[], float],
              labels: Labels = (), help_text: str = "",
              kind: str = "gauge") -> None:
        """Register a pull-model metric: ``fn`` runs at scrape time only.

        ``kind="counter"`` renders a monotone value that existing state
        already accumulates (transport frame counts etc.) without any
        hot-path instrumentation.
        """
        self.family(name, kind, help_text)
        self._gauges[(name, labels)] = fn

    def summary(self, name: str, labels: Labels = (),
                help_text: str = "") -> LogHistogram:
        self.family(name, "summary", help_text)
        key = (name, labels)
        hist = self._summaries.get(key)
        if hist is None:
            self._summaries[key] = hist = LogHistogram()
        return hist

    def collector(self, fn: Callable[[], Iterable[tuple]]) -> None:
        """Register a dynamic sampler: ``fn()`` yields
        ``(family, labels, value)`` tuples at scrape time, for metrics
        whose label sets only exist once something happens (per-channel
        link-fault drops).  Declare the family first."""
        self._collectors.append(fn)

    # ------------------------------------------------------------------
    # Hot-path entry points
    # ------------------------------------------------------------------
    def count_message(self, kind: str) -> None:
        """One protocol message of ``kind`` was dispatched."""
        cell = self._message_counters.get(kind)
        if cell is None:
            cell = self.counter("repro_messages_total",
                                labels=(("kind", kind),))
            self._message_counters[kind] = cell
        cell.value += 1
        op = CLIENT_OP_KINDS.get(kind)
        if op is not None:
            self._client_op_counters[op].value += 1

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _samples(self) -> dict[str, list[tuple[Labels, Any]]]:
        """Every current sample, grouped by family, render-ready."""
        grouped: dict[str, list[tuple[Labels, Any]]] = {
            name: [] for name in self._families
        }
        for (name, labels), cell in self._counters.items():
            grouped[name].append((labels, cell.value))
        for (name, labels), fn in self._gauges.items():
            try:
                value = float(fn())
            except Exception:
                # A gauge must never take the scrape down with it (the
                # server it reads may be mid-teardown).
                value = 0.0
            grouped[name].append((labels, value))
        for (name, labels), hist in self._summaries.items():
            grouped[name].append((labels, hist))
        for fn in self._collectors:
            try:
                extra = list(fn())
            except Exception:
                extra = []
            for name, labels, value in extra:
                grouped.setdefault(name, []).append((tuple(labels), value))
        return grouped

    def render_prometheus(self) -> str:
        """Text-exposition v0.0.4: HELP/TYPE per family, then samples."""
        lines: list[str] = []
        grouped = self._samples()
        for name in sorted(grouped):
            kind, help_text = self._families.get(name, ("gauge", ""))
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in sorted(grouped[name],
                                        key=lambda item: item[0]):
                if isinstance(value, LogHistogram):
                    for quantile, p in SUMMARY_QUANTILES:
                        q_labels = labels + (("quantile", quantile),)
                        lines.append(
                            f"{name}{_label_str(q_labels)} "
                            f"{_fmt(value.percentile(p) if value.count else 0.0)}"
                        )
                    lines.append(f"{name}_sum{_label_str(labels)} "
                                 f"{_fmt(value.total)}")
                    lines.append(f"{name}_count{_label_str(labels)} "
                                 f"{value.count}")
                else:
                    lines.append(
                        f"{name}{_label_str(labels)} {_fmt(value)}"
                    )
        lines.append("")
        return "\n".join(lines)

    def snapshot(self) -> dict[str, Any]:
        """The ``/vars.json`` document: every sample as plain JSON.

        Families map to ``{label-string: value}``; summaries expand to
        their :meth:`LogHistogram.summary` dict.  The same numbers the
        Prometheus rendering carries, shaped for scripts and
        ``repro-top`` (no exposition-format parsing needed).
        """
        out: dict[str, Any] = {
            "uptime_seconds": time.monotonic() - self._started_monotonic,
        }
        families: dict[str, Any] = {}
        for name, samples in self._samples().items():
            rendered: dict[str, Any] = {}
            for labels, value in samples:
                key = _label_str(labels) or "_"
                if isinstance(value, LogHistogram):
                    rendered[key] = value.summary()
                else:
                    rendered[key] = value
            families[name] = rendered
        out["metrics"] = families
        return out


class LoopLagProbe:
    """Self-measuring event-loop lag: schedules itself every
    ``interval_s`` and records how late the callback actually ran —
    the live analogue of the simulator's perfectly punctual timers.
    Armed only while telemetry is enabled; zero cost otherwise."""

    def __init__(self, loop, interval_s: float):
        self._loop = loop
        self._interval_s = interval_s
        self._handle = None
        self._expected = 0.0
        self.last_lag_s = 0.0
        self.max_lag_s = 0.0

    def start(self) -> None:
        self._expected = self._loop.time() + self._interval_s
        self._handle = self._loop.call_at(self._expected, self._tick)

    def _tick(self) -> None:
        lag = max(self._loop.time() - self._expected, 0.0)
        self.last_lag_s = lag
        if lag > self.max_lag_s:
            self.max_lag_s = lag
        self.start()

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


def _label_str(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _fmt(value: float) -> str:
    # Integral values render without an exponent or trailing zeros so
    # counters stay readable; floats keep full precision via repr.
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
