"""Staleness accounting, exactly as defined in Section V-B.

A returned data item is **old** if the version returned to the client is not
the one with the highest timestamp in the version chain.  It is **unmerged**
if at least one version of the item is not *stable* yet (its dependency cut
has not fully replicated), regardless of whether the returned version is the
freshest.  Figures 2b and 3d report the percentage of affected GETs plus the
average number of fresher / unmerged versions in the affected chains.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class StalenessAggregate:
    """Accumulates staleness observations for one class of reads."""

    reads: int = 0
    old_reads: int = 0
    unmerged_reads: int = 0
    fresher_versions_total: int = 0
    unmerged_versions_total: int = 0

    def record(self, fresher_versions: int, unmerged_versions: int) -> None:
        """Record one read that returned a version with ``fresher_versions``
        newer chain entries and ``unmerged_versions`` unstable chain
        entries."""
        self.reads += 1
        if fresher_versions > 0:
            self.old_reads += 1
            self.fresher_versions_total += fresher_versions
        if unmerged_versions > 0:
            self.unmerged_reads += 1
            self.unmerged_versions_total += unmerged_versions

    # -- derived figures --------------------------------------------------
    @property
    def pct_old(self) -> float:
        """Percentage of reads that returned an old version (Fig. 2b)."""
        return 100.0 * self.old_reads / self.reads if self.reads else 0.0

    @property
    def pct_unmerged(self) -> float:
        """Percentage of reads of a not-fully-merged item (Fig. 2b)."""
        return 100.0 * self.unmerged_reads / self.reads if self.reads else 0.0

    @property
    def avg_fresher_versions(self) -> float:
        """Average # fresher versions when the returned item was old."""
        if not self.old_reads:
            return 0.0
        return self.fresher_versions_total / self.old_reads

    @property
    def avg_unmerged_versions(self) -> float:
        """Average # unmerged versions when the item was unmerged."""
        if not self.unmerged_reads:
            return 0.0
        return self.unmerged_versions_total / self.unmerged_reads

    def merge(self, other: "StalenessAggregate") -> None:
        self.reads += other.reads
        self.old_reads += other.old_reads
        self.unmerged_reads += other.unmerged_reads
        self.fresher_versions_total += other.fresher_versions_total
        self.unmerged_versions_total += other.unmerged_versions_total

    def summary(self) -> dict[str, float]:
        return {
            "reads": self.reads,
            "pct_old": self.pct_old,
            "pct_unmerged": self.pct_unmerged,
            "avg_fresher_versions": self.avg_fresher_versions,
            "avg_unmerged_versions": self.avg_unmerged_versions,
        }
