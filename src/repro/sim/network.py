"""The simulated message network: lossless, FIFO, point-to-point.

The paper's system model (Section II-C) assumes "point to point lossless
FIFO channels"; Proposition 3's correctness argument additionally relies on
updates and heartbeats being *received* in timestamp order.  We guarantee
FIFO per ordered endpoint pair by never letting a later send overtake an
earlier one: the delivery time of a message is
``max(previous delivery on this channel, now + sampled latency)``.

The network also:

* accounts messages and bytes per (src DC, dst DC) pair, which backs the
  communication-overhead comparison between POCC and Cure*;
* cooperates with :class:`repro.sim.faults.FaultInjector` to hold back
  messages across partitioned DC pairs and flush them in order on heal
  (partitions delay, they do not drop — the lossless assumption);
* optionally *violates* the lossless assumption on demand: a per-directed-
  DC-pair loss table drops messages probabilistically (chaos scenarios
  studying anti-entropy repair).  Every drop is counted — chaos runs
  assert that sent == delivered + held + dropped + expired.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Iterable, Protocol

from repro.common.errors import SimulationError
from repro.common.types import Address
from repro.protocols.core import MESSAGE_SIZE_FALLBACK, modeled_message_size
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel


class Endpoint(Protocol):
    """Anything that can be attached to the network."""

    @property
    def address(self) -> Address: ...

    def on_message(self, msg: Any) -> None: ...


class NetworkStats:
    """Message/byte accounting, exposed on :class:`Network`.

    Updated inline by :meth:`Network.send` (the per-message hot path)."""

    __slots__ = ("messages_sent", "bytes_sent", "per_dc_pair_bytes",
                 "per_dc_pair_messages", "inter_dc_by_type",
                 "messages_delivered", "messages_held",
                 "messages_dropped", "dropped_by_type",
                 "messages_expired")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_held = 0
        #: Messages dropped by the lossy-link table (never incremented
        #: unless a loss rate was configured).
        self.messages_dropped = 0
        #: Message-type name -> count of lossy drops (what a chaos run
        #: inspects to confirm the loss hit the traffic it targeted).
        self.dropped_by_type: dict[str, int] = {}
        #: Messages whose destination endpoint was dismantled while they
        #: were in flight (e.g. a client retired mid-experiment).  These
        #: used to vanish without a trace; counting them lets chaos runs
        #: account for every message the network ever accepted.
        self.messages_expired = 0
        self.bytes_sent = 0
        self.per_dc_pair_bytes: dict[tuple[int, int], int] = {}
        self.per_dc_pair_messages: dict[tuple[int, int], int] = {}
        #: Message-type name -> count, WAN traffic only.  What the
        #: replication-batching bench reads to report replicate
        #: messages/op (a batch of 64 is *one* entry here).
        self.inter_dc_by_type: dict[str, int] = {}

    def inter_dc_bytes(self) -> int:
        """Bytes that crossed a DC boundary (the expensive WAN traffic)."""
        return sum(
            size for (src, dst), size in self.per_dc_pair_bytes.items()
            if src != dst
        )

    def inter_dc_messages(self) -> int:
        """Messages that crossed a DC boundary."""
        return sum(
            count for (src, dst), count in self.per_dc_pair_messages.items()
            if src != dst
        )


class Network:
    """Delivers messages between registered endpoints.

    Messages may define ``size_bytes()`` for byte accounting; anything else
    is counted with a nominal fallback size (shared with the live backend
    via :data:`repro.protocols.core.MESSAGE_SIZE_FALLBACK`).
    """

    _FALLBACK_SIZE = MESSAGE_SIZE_FALLBACK

    def __init__(self, sim: Simulator, latency_model: LatencyModel):
        self._sim = sim
        self._latency = latency_model
        self._endpoints: dict[Address, Endpoint] = {}
        # FIFO enforcement: last scheduled delivery time per channel.
        self._last_delivery: dict[tuple[Address, Address], float] = {}
        # DC pairs currently partitioned (directed), and held messages.
        self._blocked_pairs: set[tuple[int, int]] = set()
        self._held: dict[tuple[int, int], deque] = {}
        # Lossy links: directed (src DC, dst DC) -> (probability, kinds).
        # ``kinds`` limits the loss to the named message types (None =
        # every message on the channel).  Empty table = the paper's
        # lossless model, with zero RNG draws on the send path.
        self._loss: dict[tuple[int, int], tuple[float, frozenset[str] | None]] = {}
        self._loss_rng: random.Random | None = None
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint) -> None:
        addr = endpoint.address
        if addr in self._endpoints:
            raise SimulationError(f"duplicate endpoint registration: {addr}")
        self._endpoints[addr] = endpoint

    def endpoint(self, address: Address) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise SimulationError(f"no endpoint registered at {address}") from None

    @property
    def endpoints(self) -> dict[Address, Endpoint]:
        return dict(self._endpoints)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self, src: Address, dst: Address, msg: Any, size: int | None = None
    ) -> None:
        """Send ``msg`` from ``src`` to ``dst`` (both must be registered).

        Delivery is asynchronous: ``dst.on_message(msg)`` fires later in
        simulated time, respecting per-channel FIFO order.  Callers that
        fan one message out to many destinations should compute
        :meth:`message_size` once and pass it via ``size`` so the byte
        accounting does not re-walk the message per destination.
        """
        if dst not in self._endpoints:
            raise SimulationError(f"no endpoint registered at {dst}")
        if size is None:
            size = self.message_size(msg)
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        pair = (src.dc, dst.dc)
        per_pair = stats.per_dc_pair_bytes
        per_pair[pair] = per_pair.get(pair, 0) + size
        per_msgs = stats.per_dc_pair_messages
        per_msgs[pair] = per_msgs.get(pair, 0) + 1
        if src.dc != dst.dc:
            by_type = stats.inter_dc_by_type
            name = type(msg).__name__
            by_type[name] = by_type.get(name, 0) + 1
        if self._loss and pair in self._loss:
            probability, kinds = self._loss[pair]
            if (kinds is None or type(msg).__name__ in kinds) and (
                probability >= 1.0
                or self._loss_rng.random() < probability  # type: ignore[union-attr]
            ):
                stats.messages_dropped += 1
                by_type = stats.dropped_by_type
                name = type(msg).__name__
                by_type[name] = by_type.get(name, 0) + 1
                return
        if pair in self._blocked_pairs:
            # Held until the partition heals; FIFO preserved by the deque.
            stats.messages_held += 1
            self._held.setdefault(pair, deque()).append((src, dst, msg))
            return
        self._schedule_delivery(src, dst, msg)

    def _schedule_delivery(self, src: Address, dst: Address, msg: Any) -> None:
        sim = self._sim
        deliver_at = sim.now + self._latency.sample(src, dst)
        channel = (src, dst)
        last = self._last_delivery
        previous = last.get(channel)
        if previous is not None and deliver_at < previous:
            deliver_at = previous  # FIFO: never overtake an earlier message
        last[channel] = deliver_at
        sim.schedule_at(deliver_at, self._deliver, dst, msg)

    def _deliver(self, dst: Address, msg: Any) -> None:
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            # Endpoint dismantled mid-flight.  Count it: chaos runs
            # reconcile sent == delivered + held + dropped + expired, so
            # no loss may go unaccounted.
            self.stats.messages_expired += 1
            return
        self.stats.messages_delivered += 1
        endpoint.on_message(msg)

    #: Wire size of ``msg`` as the byte accounting will count it — the
    #: exact same rule the live backend applies (one definition, so the
    #: two backends can never silently diverge).
    message_size = staticmethod(modeled_message_size)

    # ------------------------------------------------------------------
    # Partition control (driven by FaultInjector)
    # ------------------------------------------------------------------
    def block_dc_pair(self, src_dc: int, dst_dc: int) -> None:
        """Hold all traffic sent from ``src_dc`` to ``dst_dc``."""
        self._blocked_pairs.add((src_dc, dst_dc))

    def unblock_dc_pair(self, src_dc: int, dst_dc: int) -> None:
        """Resume traffic and flush held messages in their send order."""
        self._blocked_pairs.discard((src_dc, dst_dc))
        held = self._held.pop((src_dc, dst_dc), None)
        if not held:
            return
        for src, dst, msg in held:
            self._schedule_delivery(src, dst, msg)

    def is_blocked(self, src_dc: int, dst_dc: int) -> bool:
        return (src_dc, dst_dc) in self._blocked_pairs

    # ------------------------------------------------------------------
    # Lossy links (driven by FaultInjector)
    # ------------------------------------------------------------------
    def set_loss(
        self,
        src_dc: int,
        dst_dc: int,
        probability: float,
        rng: random.Random,
        kinds: Iterable[str] | None = None,
    ) -> None:
        """Drop messages ``src_dc`` -> ``dst_dc`` with ``probability``.

        ``kinds`` restricts the loss to the named message types (class
        names, e.g. ``"Replicate"``); None drops indiscriminately.  The
        caller supplies the RNG so drop decisions come from a dedicated
        seeded stream and never perturb other draws.
        """
        if not 0.0 <= probability <= 1.0:
            raise SimulationError("loss probability must be in [0, 1]")
        self._loss_rng = rng
        self._loss[(src_dc, dst_dc)] = (
            probability,
            None if kinds is None else frozenset(kinds),
        )

    def clear_loss(self, src_dc: int, dst_dc: int) -> None:
        self._loss.pop((src_dc, dst_dc), None)

    def clear_all_loss(self) -> None:
        self._loss.clear()

    def is_lossy(self, src_dc: int, dst_dc: int) -> bool:
        return (src_dc, dst_dc) in self._loss

    @property
    def held_message_count(self) -> int:
        return sum(len(q) for q in self._held.values())
