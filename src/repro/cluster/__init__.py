"""Cluster model: topology, key placement, CPU scheduling, node base.

Mirrors the paper's deployment (Section II-C and V-A): the key space is
hash-partitioned into N partitions, each replicated at M data centers; every
server is a 2-core machine; clients are collocated with servers.
"""

from repro.cluster.cpu import CpuScheduler
from repro.cluster.node import SimNode
from repro.cluster.topology import KeyPools, Topology

__all__ = ["CpuScheduler", "KeyPools", "SimNode", "Topology"]
