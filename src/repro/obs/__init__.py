"""Live observability: telemetry registry, metrics endpoint, tracing.

Everything the repo measured before this package existed was
post-mortem — :class:`repro.runtime.cluster.LiveReport` and the
``BENCH_*.json`` snapshots are assembled after a run ends.  This
package makes a *running* live cluster inspectable:

* :mod:`repro.obs.telemetry` — the in-process registry of counters,
  gauge callbacks and :class:`repro.metrics.histogram.LogHistogram`
  summaries that hot paths update (or that scrape time pulls from
  existing state), rendered as Prometheus v0 text or a JSON snapshot;
* :mod:`repro.obs.httpd` — the plain-asyncio HTTP endpoint serving
  ``/metrics``, ``/vars.json`` and ``/healthz``;
* :mod:`repro.obs.tracing` — sampled causal-lifecycle spans
  (``put → wal_synced → replicate_sent → installed → visible``) as
  JSONL, with trace ids reusing the version identity ``(sr, ut)``
  already carried in every replication frame;
* :mod:`repro.obs.top` — the ``repro-top`` CLI polling every endpoint
  of a deployment and rendering a per-partition live table.

The whole package is live-only and off by default
(:class:`repro.common.config.TelemetryConfig`): the simulation backend
never consults it, and with it disabled the wire frames and per-seed
sim reports are byte-identical to an engine without it (pinned by
``tests/obs/test_telemetry_off.py``).
"""

from repro.obs.telemetry import Telemetry

__all__ = ["Telemetry"]
