"""The simulation runtime adapter: network endpoint + CPU + engine timers.

:class:`SimNode` implements the :class:`repro.protocols.core.ProtocolRuntime`
interface on the deterministic discrete-event backend.  One adapter backs
one protocol core (server or client): network deliveries pass through the
node's modeled CPU queue before the core's handler runs; the core's effects
— sends, timers, local work — are executed on the event engine.

The adapter holds everything simulation-specific (engine, network, modeled
cores); the core it feeds is I/O-free and also runs unmodified on the live
asyncio backend (:mod:`repro.runtime`).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.common.errors import SimulationError
from repro.common.types import Address
from repro.cluster.cpu import CpuScheduler, FOREGROUND
from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import Network


class SimNode:
    """Deterministic-simulation runtime for one protocol core."""

    __slots__ = ("sim", "network", "_address", "cpu", "core")

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: Address,
        cores: int = 2,
    ):
        self.sim = sim
        self.network = network
        self._address = address
        self.cpu = CpuScheduler(sim, cores)
        self.core = None
        network.register(self)

    def bind(self, core) -> None:
        """Attach the protocol core this adapter feeds (exactly once)."""
        if self.core is not None:
            raise SimulationError(
                f"{self._address}: adapter already bound to {self.core!r}"
            )
        self.core = core

    # ------------------------------------------------------------------
    # Network endpoint protocol (the Network delivers through here)
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return self._address

    def on_message(self, msg: Any) -> None:
        """Network delivery: hand the message to the bound core."""
        self.core.on_message(msg)

    # ------------------------------------------------------------------
    # ProtocolRuntime: time and timers
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(self, delay: float, fn, *args) -> EventHandle:
        return self.sim.schedule(delay, fn, *args)

    def schedule_at(self, time: float, fn, *args) -> EventHandle:
        return self.sim.schedule_at(time, fn, *args)

    def schedule_flush(self, delay: float, fn, *args) -> EventHandle:
        """Flush deadlines are ordinary engine events: deterministic
        (seeded tie-breaking) like every other timer."""
        return self.sim.schedule(delay, fn, *args)

    # ------------------------------------------------------------------
    # ProtocolRuntime: sends
    # ------------------------------------------------------------------
    def send(self, dst: Address, msg: Any, size: int | None = None) -> None:
        self.network.send(self._address, dst, msg, size)

    def send_fanout(self, dsts: Iterable[Address], msg: Any) -> None:
        size = self.network.message_size(msg)
        network_send = self.network.send
        src = self._address
        for dst in dsts:
            network_send(src, dst, msg, size)

    def message_size(self, msg: Any) -> int:
        return self.network.message_size(msg)

    # ------------------------------------------------------------------
    # ProtocolRuntime: local work (modeled CPU)
    # ------------------------------------------------------------------
    def submit(self, cost_s: float, fn, *args,
               priority: int = FOREGROUND) -> None:
        if cost_s > 0:
            self.cpu.submit(cost_s, fn, *args, priority=priority)
        else:
            fn(*args)

    # ------------------------------------------------------------------
    # ProtocolRuntime: durability (the engine models no disks)
    # ------------------------------------------------------------------
    def persist(self, version: Any) -> None:
        """No-op: simulated runs charge nothing for durability, keeping
        per-seed reports byte-identical with the pre-durability engine."""
