"""Garbage collection of old versions (Section IV-B, "Garbage collection").

The rule: given the garbage-collection vector ``GV`` (the aggregate minimum
of the snapshot vectors of active transactions across the DC, or of version
vectors when no transaction runs), each server scans every chain in
descending timestamp order and *retains up to and including the first
version whose dependency cut is covered by GV* — i.e. the oldest version
that a currently running (or future) transaction with snapshot >= GV could
still need — removing everything older.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.clocks.vector import vec_leq
from repro.common.types import Micros
from repro.storage.chain import VersionChain
from repro.storage.version import Version


@dataclass(slots=True)
class GcStats:
    """Counters accumulated across GC rounds."""

    rounds: int = 0
    versions_removed: int = 0
    chains_scanned: int = 0
    last_gv: list[Micros] = field(default_factory=list)


def collect_chain_by(
    chain: VersionChain, covered: Callable[[Version], bool]
) -> int:
    """Apply the retention rule with an arbitrary coverage predicate.

    Walking freshest-to-oldest, every version is kept until (and including)
    the first *covered* one; older versions are dropped.  The chain never
    becomes empty: if no version is covered, everything is retained (a
    conservative, safe outcome while the garbage horizon lags).

    The vector-clock protocols cover a version once its dependency cut is
    inside the garbage vector; the scalar-clock protocol (GentleRain*)
    covers it once its timestamp is below the stable time.
    """
    keep = []
    removed = 0
    found_covered = False
    for version in chain:
        if found_covered:
            removed += 1
            continue
        keep.append(version)
        if covered(version):
            found_covered = True
    if removed:
        chain.truncate_to(keep)
    return removed


def collect_chain(chain: VersionChain, gv: Sequence[Micros]) -> int:
    """The paper's retention rule: keep up to the first version whose
    dependency vector is covered by GV (Section IV-B)."""
    return collect_chain_by(chain, lambda version: vec_leq(version.dv, gv))
