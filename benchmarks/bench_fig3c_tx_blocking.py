"""Figure 3c — POCC blocking (PUT or transactional read) on the RO-TX
workload vs clients/partition.

Paper claim: strongly non-linear dynamics — blocking *time* is high at low
load (a stalled slice waits for the next heartbeat), dips around the
throughput peak (updates and heartbeats flow faster), then grows under
overload (queued replication delays); blocking probability peaks with the
throughput."""

from benchmarks.common import run_figure


def test_fig3c_tx_blocking(benchmark):
    data = run_figure(benchmark, "3c")
    probabilities = data.ys("blocking probability")
    times = data.ys("blocking time (ms)")

    # Transactional workloads do block measurably (unlike plain GETs).
    assert max(probabilities) > 1e-4

    # Blocking time at low load is heartbeat-scale: paper sets ∆ = 1 ms,
    # so stalls are fractions of a millisecond up to a few milliseconds.
    assert 0.005 < times[0] < 20.0, times

    # Probability stays bounded away from certainty everywhere.
    assert all(p < 0.5 for p in probabilities)
