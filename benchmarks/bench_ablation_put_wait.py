"""Ablation — the optional PUT dependency wait (Algorithm 2 line 6).

The paper enables it in the evaluation "despite this not being needed to
implement the last-writer-wins rule", to model conflict handlers that need
a version's dependencies present before installing it.  Disabling it must
remove PUT-dependency blocking entirely while leaving results convergent
and causal reads intact."""

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.harness.experiment import run_experiment


def _config(put_wait: bool) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3,
            num_partitions=4,
            keys_per_partition=200,
            protocol="pocc",
            protocol_config=ProtocolConfig(put_dependency_wait=put_wait),
        ),
        workload=WorkloadConfig(kind="get_put", gets_per_put=1,  # write-heavy
                                clients_per_partition=6,
                                think_time_s=0.005),
        warmup_s=0.4,
        duration_s=1.6,
        verify=True,
        name=f"putwait-{put_wait}",
    )


def test_ablation_put_dependency_wait(benchmark):
    results = {}

    def run() -> None:
        for enabled in (True, False):
            results[enabled] = run_experiment(_config(enabled))

    benchmark.pedantic(run, rounds=1, iterations=1)

    assert results[True].blocking["put_deps"]["attempts"] > 0
    assert results[False].blocking["put_deps"]["attempts"] == 0

    # Last-writer-wins keeps both variants convergent and causally sound.
    for enabled in (True, False):
        assert results[enabled].verification["violations"] == 0
        assert results[enabled].divergences == 0

    # Skipping the wait can only help throughput.
    assert (results[False].throughput_ops_s
            >= results[True].throughput_ops_s * 0.95)
