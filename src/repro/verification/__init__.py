"""Independent consistency verification.

The checker tracks *precise* per-key causal pasts from observed reads-from
and program-order relationships — deliberately ignoring the protocols' own
vector metadata — and flags:

* **causal GET violations**: a read returned a version older (in the
  last-writer-wins order) than a version of the same key in the client's
  causal past (the obligation of the paper's Proposition 3);
* **transactional snapshot violations**: a RO-TX returned items X and Y
  with an intermediate version X' (X ⇝ X' ⇝ Y) that the snapshot skipped
  (the obligation of Proposition 4);
* **divergence**: after replication quiesces, replicas disagree on the
  last-writer-wins winner of some key (broken convergent conflict
  handling).

POCC and Cure* histories must pass all checks; the ``eventual`` strawman
protocol exists to show the checker actually fails unsafe systems.
"""

from repro.verification.checker import CausalChecker, Violation
from repro.verification.convergence import check_convergence
from repro.verification.history import (
    History,
    ReadEvent,
    TxReadEvent,
    WriteEvent,
)

__all__ = [
    "CausalChecker",
    "History",
    "ReadEvent",
    "TxReadEvent",
    "Violation",
    "WriteEvent",
    "check_convergence",
]
