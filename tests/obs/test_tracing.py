"""Sampled causal-lifecycle tracing: the JSONL span sink.

The design constraints under test: trace ids reuse the version identity
``(sr, ut)`` (zero wire bytes), and sampling is a pure function of
``ut`` so every process keeps or drops the same write without
coordination.
"""

import os

import pytest

from repro.obs.tracing import (
    FLUSH_EVERY,
    SPAN_EVENTS,
    TraceLog,
    group_by_trace,
    read_spans,
)


def _log(tmp_path, sample_every=1, start=100.0):
    clock = {"now": start}
    log = TraceLog(str(tmp_path / "trace-dc0-p0.jsonl"), sample_every,
                   now_fn=lambda: clock["now"])
    return log, clock


def test_sampling_predicate_is_deterministic_in_ut(tmp_path):
    log, _ = _log(tmp_path, sample_every=64)
    assert log.sampled(0)
    assert log.sampled(64 * 12345)
    assert not log.sampled(1)
    assert not log.sampled(63)
    # Same predicate on every process: origin and remotes agree on a
    # write's fate from its ut alone.
    other, _ = _log(tmp_path, sample_every=64)
    for ut in range(0, 300, 7):
        assert log.sampled(ut) == other.sampled(ut)


def test_sample_every_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        TraceLog(str(tmp_path / "t.jsonl"), 0, now_fn=lambda: 0.0)


def test_span_round_trip_and_trace_grouping(tmp_path):
    log, clock = _log(tmp_path)
    # One write's full lifecycle, origin then remote, out of order in
    # the file but ordered by time after grouping.
    log.span("put", 0, 4096, node="dc0-p0", key="x")
    clock["now"] = 100.001
    log.span("wal_synced", 0, 4096, node="dc0-p0")
    clock["now"] = 100.002
    log.span("replicate_sent", 0, 4096, node="dc0-p0")
    clock["now"] = 100.010
    log.span("installed", 0, 4096, node="dc1-p0")
    clock["now"] = 100.015
    log.span("visible", 0, 4096, node="dc1-p0")
    log.span("put", 1, 8192, node="dc1-p0", key="y")
    log.close()

    spans = read_spans(log.path)
    assert len(spans) == 6
    groups = group_by_trace(spans)
    assert set(groups) == {"0:4096", "1:8192"}
    lifecycle = groups["0:4096"]
    assert [s["event"] for s in lifecycle] == list(SPAN_EVENTS)
    assert lifecycle[0]["key"] == "x"
    assert lifecycle[0]["node"] == "dc0-p0"
    assert lifecycle[-1]["node"] == "dc1-p0"
    # Timestamps are monotone within the grouped lifecycle.
    times = [s["t"] for s in lifecycle]
    assert times == sorted(times)


def test_spans_buffer_then_flush_at_watermark(tmp_path):
    log, _ = _log(tmp_path)
    for i in range(FLUSH_EVERY - 1):
        log.span("put", 0, i, node="dc0-p0")
    # Nothing forced to disk yet (buffered); one more span crosses the
    # watermark and flushes everything.
    log.span("put", 0, FLUSH_EVERY, node="dc0-p0")
    assert len(read_spans(log.path)) == FLUSH_EVERY
    assert log.spans_written == FLUSH_EVERY
    log.close()


def test_close_flushes_and_makes_span_a_noop(tmp_path):
    log, _ = _log(tmp_path)
    log.span("put", 2, 7, node="dc0-p1")
    log.close()
    log.span("put", 2, 8, node="dc0-p1")  # after close: dropped
    log.close()  # idempotent
    assert len(read_spans(log.path)) == 1


def test_append_mode_survives_reopen(tmp_path):
    first, _ = _log(tmp_path)
    first.span("put", 0, 1, node="dc0-p0")
    first.close()
    second, _ = _log(tmp_path)  # same path: a restarted process appends
    second.span("installed", 0, 1, node="dc0-p0")
    second.close()
    assert [s["event"] for s in read_spans(second.path)] == \
        ["put", "installed"]


def test_trace_dir_is_created_on_demand(tmp_path):
    nested = tmp_path / "a" / "b" / "trace.jsonl"
    log = TraceLog(str(nested), 1, now_fn=lambda: 0.0)
    log.span("put", 0, 0, node="dc0-p0")
    log.close()
    assert os.path.exists(str(nested))
