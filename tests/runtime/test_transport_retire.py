"""Channel retirement: frames to a resharded-out peer are discarded.

The failure mode these pin: after a removal commits, the leaver's
process stops for good, but background fan-outs (heartbeats, GC
broadcasts, view gossip) keep addressing the full topology.  Without
retirement every tick burns a full connect-retry budget against the
dead listener and records a transport error, which a clean shutdown
treats as a failure.  ``LiveHub.retire`` makes the grave explicit:
frames to it are counted in ``stats.retired_frames`` and dropped, the
open channel (if any) is torn down, and nothing ever re-dials — while
the *implicit* dead-sender path keeps its opposite behavior (re-dial
fresh), because a crashed peer that restarted from its WAL must be
reachable again.
"""

import asyncio

from repro.common.types import server_address
from repro.runtime import transport
from repro.runtime.transport import AddressBook, LiveHub


class FakeWriter:
    """The StreamWriter surface the sender touches, against no socket."""

    def __init__(self):
        self.writes: list[bytes] = []
        self.closed = False

    def write(self, data: bytes) -> None:
        self.writes.append(bytes(data))

    def writelines(self, parts) -> None:
        self.writes.append(b"".join(bytes(part) for part in parts))

    def get_extra_info(self, name, default=None):
        return default

    async def drain(self) -> None:
        await asyncio.sleep(0)

    def close(self) -> None:
        self.closed = True


def _hub() -> tuple[LiveHub, object]:
    dst = server_address(0, 0)
    book = AddressBook()
    book.set(dst, "127.0.0.1", 1)
    return LiveHub(book), dst


def test_frames_to_a_retired_peer_are_dropped_and_counted():
    hub, dst = _hub()
    assert not hub.is_retired(dst)
    hub.retire(dst)
    assert hub.is_retired(dst)
    for _ in range(3):
        hub.post_frame(dst, b"gossip")
    assert hub.stats.retired_frames == 3
    # Dropped frames never count as sent and never open a channel —
    # that is the whole point: no dial, no retry budget, no error.
    assert hub.stats.messages_sent == 0
    assert hub.stats.connect_attempts == 0
    assert dst not in hub._channels
    assert hub.errors == []


def test_unretire_restores_delivery(monkeypatch):
    hub, dst = _hub()
    writer = FakeWriter()

    async def fake_open_connection(host, port):
        return None, writer

    monkeypatch.setattr(transport.asyncio, "open_connection",
                        fake_open_connection)

    async def run() -> None:
        hub.retire(dst)
        hub.post_frame(dst, b"dropped")
        hub.unretire(dst)
        assert not hub.is_retired(dst)
        hub.post_frame(dst, b"delivered")
        await asyncio.wait_for(hub._channels[dst][0].join(), timeout=5.0)

    asyncio.run(run())
    assert hub.stats.retired_frames == 1
    assert hub.stats.messages_sent == 1
    assert b"".join(writer.writes) == b"delivered"


def test_retire_tears_down_the_open_channel(monkeypatch):
    hub, dst = _hub()
    writer = FakeWriter()

    async def fake_open_connection(host, port):
        return None, writer

    monkeypatch.setattr(transport.asyncio, "open_connection",
                        fake_open_connection)

    async def run() -> None:
        hub.post_frame(dst, b"live traffic")
        queue, task = hub._channels[dst]
        await asyncio.wait_for(queue.join(), timeout=5.0)
        hub.retire(dst)
        assert dst not in hub._channels
        try:
            await task
        except asyncio.CancelledError:
            pass
        assert task.cancelled()

    asyncio.run(run())
    assert hub.stats.retired_frames == 0  # only *future* frames drop
    assert b"".join(writer.writes) == b"live traffic"


def test_dead_sender_is_redialed_not_retired(monkeypatch):
    """The implicit path keeps its opposite contract: a sender task that
    died (peer crashed) is replaced with a fresh dial on the next frame,
    because a WAL-recovered peer must be reachable again.  Only the
    explicit ``retire`` call makes a destination permanent."""
    hub, dst = _hub()
    writer = FakeWriter()

    async def fake_open_connection(host, port):
        return None, writer

    monkeypatch.setattr(transport.asyncio, "open_connection",
                        fake_open_connection)

    async def run() -> None:
        dead = asyncio.get_running_loop().create_task(asyncio.sleep(0))
        await dead  # the old sender is done: its peer's crash killed it
        hub._channels[dst] = (asyncio.Queue(), dead)
        hub.post_frame(dst, b"after recovery")
        queue, task = hub._channels[dst]
        assert task is not dead  # re-dialed fresh
        await asyncio.wait_for(queue.join(), timeout=5.0)
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    asyncio.run(run())
    assert hub.stats.reconnects == 1
    assert hub.stats.retired_frames == 0
    assert not hub.is_retired(dst)
    assert b"".join(writer.writes) == b"after recovery"


def test_runtime_retire_peer_delegates_to_the_hub():
    hub, dst = _hub()
    runtime = hub.runtime(server_address(0, 1))
    runtime.retire_peer(dst)
    assert hub.is_retired(dst)
    hub.post_frame(dst, b"view gossip")
    assert hub.stats.retired_frames == 1
