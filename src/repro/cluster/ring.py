"""Epoch-versioned cluster views over a consistent-hash ring.

Elastic membership replaces the boot-frozen ``crc32 % num_partitions``
placement with a consistent-hash ring of virtual nodes: each member
partition contributes ``vnodes`` points at ``crc32("p{partition}/{i}")``
and a key is owned by the first ring point clockwise of ``crc32(key)``.
crc32 keeps the ring identical across processes and Python versions —
every server, client and recovery tool derives the same placement from
``(members, vnodes)`` alone, with no coordination.

Consistent hashing is what makes online resharding cheap: adding one
member moves only the keys that now land on its vnodes (≈ K/S of them),
and removing one moves only the keys it held.  Views are immutable and
epoch-numbered; a view change is a *new* view committed by the reshard
driver (:mod:`repro.cluster.reshard`) after the causal-safe handoff in
:mod:`repro.protocols.membership` completes.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass, field

from repro.common.errors import ConfigError

#: Default virtual nodes per member: enough that one view change moves
#: close to K/S keys with low variance, small enough that ring builds
#: stay microsecond-cheap at this repo's partition counts.
DEFAULT_VNODES = 64


def _hash32(token: str) -> int:
    return zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """An immutable consistent-hash ring over member partition ids."""

    __slots__ = ("members", "vnodes", "_points", "_owners")

    def __init__(self, members: tuple[int, ...], vnodes: int):
        if not members:
            raise ConfigError("a hash ring needs at least one member")
        if vnodes < 1:
            raise ConfigError("vnodes must be >= 1")
        self.members = tuple(sorted(set(members)))
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for partition in self.members:
            for vnode in range(vnodes):
                # The vnode token hashes the *partition id*, never the
                # address: the same member set always yields the same
                # ring no matter which DC or process builds it.
                points.append((_hash32(f"p{partition}/{vnode}"), partition))
        # Ties (two vnodes on one hash) break toward the lower partition
        # id so the sort itself stays deterministic.
        points.sort()
        self._points = [h for h, _ in points]
        self._owners = [p for _, p in points]

    def owner_of(self, key: str) -> int:
        """The member partition owning ``key`` (first point clockwise)."""
        idx = bisect.bisect_right(self._points, _hash32(key))
        if idx == len(self._owners):
            idx = 0  # wrap past 2**32 to the first ring point
        return self._owners[idx]

    def __len__(self) -> int:
        return len(self._points)


@dataclass(frozen=True)
class ClusterView:
    """One epoch of cluster membership: which partitions own keys.

    ``members`` is the sorted tuple of partition ids currently on the
    ring; partitions outside it are booted (they hold addresses, ports
    and server processes) but own no keys until a view adds them.  The
    ring is derived, cached, and never serialized — ``(epoch, members,
    vnodes)`` is the entire wire/WAL representation.
    """

    epoch: int
    members: tuple[int, ...]
    vnodes: int = DEFAULT_VNODES
    _ring: HashRing = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ConfigError("view epoch must be >= 0")
        object.__setattr__(self, "members", tuple(sorted(set(self.members))))
        object.__setattr__(self, "_ring",
                           HashRing(self.members, self.vnodes))

    def owner_of(self, key: str) -> int:
        return self._ring.owner_of(key)

    def is_member(self, partition: int) -> bool:
        return partition in self.members

    def with_member(self, partition: int) -> "ClusterView":
        """The next-epoch view after ``partition`` joins the ring."""
        if partition in self.members:
            raise ConfigError(f"partition {partition} is already a member")
        return ClusterView(self.epoch + 1,
                           self.members + (partition,), self.vnodes)

    def without_member(self, partition: int) -> "ClusterView":
        """The next-epoch view after ``partition`` leaves the ring."""
        if partition not in self.members:
            raise ConfigError(f"partition {partition} is not a member")
        remaining = tuple(p for p in self.members if p != partition)
        return ClusterView(self.epoch + 1, remaining, self.vnodes)

    # -- serialization (wire messages, WAL records, JSON reports) ------
    def to_wire(self) -> tuple[int, tuple[int, ...], int]:
        return (self.epoch, self.members, self.vnodes)

    @classmethod
    def from_wire(cls, epoch: int, members, vnodes: int) -> "ClusterView":
        return cls(int(epoch), tuple(int(p) for p in members), int(vnodes))


def initial_view(num_partitions: int,
                 initial_members: tuple[int, ...] | None,
                 vnodes: int) -> ClusterView:
    """Epoch-0 view from a membership config block.

    ``initial_members=None`` means every partition of the address space
    starts on the ring; an explicit subset leaves the rest booted but
    empty, ready to join via ``repro-reshard``.
    """
    members = (tuple(range(num_partitions)) if initial_members is None
               else tuple(initial_members))
    for partition in members:
        if not 0 <= partition < num_partitions:
            raise ConfigError(
                f"initial member {partition} outside the partition "
                f"address space [0, {num_partitions})"
            )
    return ClusterView(0, members, vnodes)
