"""Okapi* alongside the paper's two systems on one GET/PUT figure and one
transactional figure.

The claims under test are the trade-offs the Okapi design buys with hybrid
clocks + universal stabilization:

* *faster/cheaper*: writes never block (no clock waits, no dependency
  waits) and O(1) metadata makes Okapi* the smallest wire footprint of
  the three;
* the price is *freshness*: remote updates wait for the slowest DC plus a
  gossip round, so Okapi*'s visibility lag and staleness sit above
  Cure*'s (per-DC stabilization) which sits above POCC's (visibility at
  receipt) — one more point on the metadata/visibility trade-off curve.
"""

from pathlib import Path

from repro.harness.figures import CURE, OKAPI, POCC, figure_1b, figure_3d
from repro.metrics.collectors import ALL_BLOCK_CAUSES

from benchmarks.common import bench_scale

RESULTS_DIR = Path(__file__).parent / "results"

PROTOCOLS = (CURE, POCC, OKAPI)


def _blocked(result):
    return sum(result.blocking[c]["blocked"] for c in ALL_BLOCK_CAUSES)


def test_okapi_fig1_getput(benchmark):
    data = {}

    def run() -> None:
        data["fig"] = figure_1b(scale=bench_scale(), protocols=PROTOCOLS)

    benchmark.pedantic(run, rounds=1, iterations=1)
    fig = data["fig"]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "figure_1b_okapi.txt").write_text(
        fig.table_text() + "\n", encoding="utf-8"
    )

    okapi = fig.series["Okapi*"]
    pocc = fig.series["POCC"]
    # Okapi* saturates in the same ballpark as the paper's systems: the
    # stabilization work is O(1) messages and reads are chain scans
    # bounded by GC, not a protocol bottleneck.
    assert max(x for x, _ in okapi) >= 0.8 * max(x for x, _ in pocc)

    okapi_results = [r for r in fig.results if r.protocol == "okapi"]
    pocc_results = [r for r in fig.results if r.protocol == "pocc"]
    cure_results = [r for r in fig.results if r.protocol == "cure"]
    assert okapi_results and pocc_results and cure_results

    for result in okapi_results:
        # The headline claims: zero blocked operations anywhere...
        assert _blocked(result) == 0, result.name
        # ...and the smallest per-operation wire footprint of the three.
    mean_bytes = lambda rs: sum(r.bytes_per_op for r in rs) / len(rs)
    assert mean_bytes(okapi_results) < mean_bytes(pocc_results)
    assert mean_bytes(okapi_results) < mean_bytes(cure_results)

    # The freshness price: universal stability needs the slowest WAN link
    # plus the gossip round, so at every load point Okapi*'s visibility
    # lag sits above both the per-DC stable cut and receipt visibility.
    for okapi_r, pocc_r, cure_r in zip(okapi_results, pocc_results,
                                       cure_results):
        okapi_lag = okapi_r.visibility_lag["mean"]
        assert okapi_lag > cure_r.visibility_lag["mean"], okapi_r.name
        assert okapi_lag > pocc_r.visibility_lag["mean"], okapi_r.name


def test_okapi_fig3_tx_staleness(benchmark):
    data = {}

    def run() -> None:
        data["fig"] = figure_3d(scale=bench_scale(), protocols=PROTOCOLS)

    benchmark.pedantic(run, rounds=1, iterations=1)
    fig = data["fig"]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "figure_3d_okapi.txt").write_text(
        fig.table_text() + "\n", encoding="utf-8"
    )

    # Snapshot freshness ordering at every load point: POCC reads at the
    # received-items cut, Cure* at the per-DC stable cut, Okapi* at the
    # universal stable cut — strictly the stalest of the three.
    okapi_old = fig.ys("Okapi* % old")
    cure_old = fig.ys("Cure* % old")
    pocc_old = fig.ys("POCC % old")
    for okapi_pct, cure_pct, pocc_pct in zip(okapi_old, cure_old, pocc_old):
        assert okapi_pct >= cure_pct
        assert cure_pct >= pocc_pct

    # Okapi* transactions never block: no slice or stabilization waits.
    for result in fig.results:
        if result.protocol == "okapi":
            assert _blocked(result) == 0, result.name
