"""Figure 3d — staleness of transactional reads: POCC vs Cure*.

Paper claim: POCC's percentage of old items is roughly two orders of
magnitude below Cure*'s, because POCC bounds transaction snapshots by
*received* items while Cure* bounds them by *stable* items.  POCC has no
separate unmerged series (for POCC old == unmerged)."""

from benchmarks.common import run_figure


def test_fig3d_tx_staleness(benchmark):
    data = run_figure(benchmark, "3d")
    pocc_old = data.ys("POCC % old")
    cure_old = data.ys("Cure* % old")
    cure_unmerged = data.ys("Cure* % unmerged")

    # Cure* transactions read stale data at every load point.
    assert all(c > 0 for c in cure_old)

    # POCC is never staler than Cure* at any load point...
    for pocc, cure in zip(pocc_old, cure_old):
        assert pocc <= cure + 1e-9

    # ...and at low-to-moderate load (the first half of the sweep, before
    # overload starves replication apply) the paper's orders-of-magnitude
    # gap holds: POCC reads essentially no old items.
    half = max(1, len(pocc_old) // 2)
    for pocc, cure in zip(pocc_old[:half], cure_old[:half]):
        assert pocc * 10 <= cure + 1e-9, (pocc, cure)

    # Unmerged >= old for Cure* (an old item is also unmerged).
    for old, unmerged in zip(cure_old, cure_unmerged):
        assert unmerged >= old - 1e-9
