"""Legacy setup shim.

The project metadata lives in pyproject.toml; this file exists so
``pip install -e .`` works in offline environments whose setuptools lacks
the ``wheel`` package (PEP 660 editable builds need it, legacy develop
installs do not).
"""

from setuptools import setup

setup()
