"""Tests for the experiment runner and result aggregation."""

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.builders import build_cluster
from repro.harness.experiment import run_experiment


def _config(**kwargs):
    defaults = dict(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=50, protocol="pocc"),
        workload=WorkloadConfig(clients_per_partition=2, gets_per_put=3,
                                think_time_s=0.005),
        warmup_s=0.2,
        duration_s=1.0,
        seed=5,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def result():
    return run_experiment(_config())


def test_throughput_positive(result):
    assert result.total_ops > 0
    assert result.throughput_ops_s > 0
    assert result.duration_s == pytest.approx(1.0, rel=0.05)


def test_throughput_consistent_with_ops(result):
    assert result.throughput_ops_s == pytest.approx(
        result.total_ops / result.duration_s
    )


def test_op_stats_cover_both_types(result):
    assert result.op_stats["get"]["count"] > 0
    assert result.op_stats["put"]["count"] > 0
    assert result.op_stats["ro_tx"]["count"] == 0
    # 3:1 GET:PUT ratio should be visible in the counts.
    ratio = result.op_stats["get"]["count"] / result.op_stats["put"]["count"]
    assert 2.0 < ratio < 4.5


def test_mean_response_time_sane(result):
    # Client-local request + reply with light load: sub-5ms.
    assert 0.0001 < result.mean_response_time_s < 0.005


def test_closed_loop_throughput_matches_littles_law(result):
    clients = 3 * 2 * 2  # dcs * partitions * clients_per_partition
    expected = clients / (0.005 + result.mean_response_time_s)
    assert result.throughput_ops_s == pytest.approx(expected, rel=0.15)


def test_network_accounting(result):
    assert result.network_messages > 0
    assert result.network_bytes > 0
    assert 0 < result.inter_dc_bytes <= result.network_bytes
    assert result.bytes_per_op > 0


def test_cpu_utilization_in_unit_range(result):
    assert 0.0 < result.cpu_utilization_mean <= 1.0
    assert result.cpu_utilization_mean <= result.cpu_utilization_max <= 1.0


def test_summary_text_renders(result):
    text = result.summary_text()
    assert "throughput" in text
    assert "pocc" in text


def test_verification_block_present_when_requested():
    result = run_experiment(_config(verify=True))
    assert result.verification is not None
    assert result.verification["violations"] == 0
    assert result.divergences == 0


def test_verification_absent_by_default(result):
    assert result.verification is None
    assert result.divergences is None


def test_prebuilt_cluster_can_be_passed():
    config = _config()
    built = build_cluster(config)
    built.faults.schedule_partition(at=0.4, group_a=[0], group_b=[1],
                                    heal_after=0.2)
    result = run_experiment(config, built=built)
    assert result.total_ops > 0
    assert built.faults.partitions_started == 1


def test_build_cluster_shape():
    built = build_cluster(_config())
    assert len(built.servers) == 6
    assert len(built.clients) == 12
    assert len(built.drivers) == 12
    assert built.pools.total_keys == 100


def test_warmup_excluded_from_window():
    short = run_experiment(_config(warmup_s=0.0, duration_s=1.2))
    # Warmup=0 includes the start-up ramp; throughput must still be
    # positive and the window must match duration.
    assert short.duration_s == pytest.approx(1.2, rel=0.05)
