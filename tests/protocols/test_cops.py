"""COPS* semantics: explicit dependency checking and delayed visibility.

The distinctive behaviours under test:
* nearest-dependency context maintenance (reads accumulate, a write
  subsumes everything);
* a replicated write stays *invisible* until its dependency checks pass,
  so reads never block but may return older versions;
* dependency checks generate real intra-DC message traffic (the overhead
  Section I attributes to this family);
* RO-TX is explicitly unsupported (plain COPS, not COPS-GT).
"""

import pytest

import helpers
from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.common.errors import ProtocolError
from repro.harness.experiment import run_experiment
from repro.protocols import messages as m
from repro.protocols.cops import CopsVersion


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="cops")


def test_read_your_writes(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "mine")
    assert helpers.get(built, client, key).value == "mine"


def test_nearest_deps_accumulate_reads_and_collapse_on_write(built):
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)

    reply_a = helpers.put(built, client, key_a, "a")
    assert client.nearest == {key_a: (reply_a.ut, 0)}

    # A second write subsumes the first (transitivity).
    reply_b = helpers.put(built, client, key_b, "b")
    assert client.nearest == {key_b: (reply_b.ut, 0)}

    # Reads accumulate alongside the last write.
    got_a = helpers.get(built, client, key_a)
    assert client.nearest == {
        key_b: (reply_b.ut, 0),
        key_a: (got_a.ut, 0),
    }


def test_preloaded_reads_add_no_dependency(built):
    """Initial (preloaded) versions are trivially everywhere; depending
    on them would only inflate every later dependency list."""
    client = helpers.client_at(built, dc=0)
    helpers.get(built, client, helpers.key_on_partition(built, 0))
    assert client.nearest == {}


def test_put_carries_dependency_list(built):
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    helpers.put(built, client, key_a, "a")

    sent = []
    original_send = client.send

    def capture(target, msg):
        if isinstance(msg, m.CopsPutReq):
            sent.append(msg)
        original_send(target, msg)

    client.send = capture
    helpers.put(built, client, key_b, "v")
    assert len(sent) == 1
    assert {dep.key for dep in sent[0].deps} == {key_a}


def test_replicated_write_invisible_until_dependency_arrives(built):
    """Y depends on X; X's partition link is cut, so Y reaches DC1 but X
    does not: Y must stay invisible (reads return the older version), and
    become visible after the heal — without any read ever blocking."""
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)

    # Baseline version of y everywhere.
    seeder = helpers.client_at(built, dc=0)
    helpers.put(built, seeder, key_y, "y-old")
    helpers.settle(built, 0.5)

    built.faults.partition_dcs([0], [1])

    # In DC2: read X (written in DC0), then write Y depending on X.
    writer0 = helpers.client_at(built, dc=0)
    helpers.put(built, writer0, key_x, "X")
    helpers.settle(built, 0.3)
    client2 = helpers.client_at(built, dc=2)
    assert helpers.get(built, client2, key_x).value == "X"
    helpers.put(built, client2, key_y, "Y-new")
    helpers.settle(built, 0.3)

    # DC1 received Y-new (from DC2) but not X (cut from DC0): the dep
    # check on X cannot pass, so reads still see the old version — and
    # complete immediately (COPS never blocks reads).
    reader1 = helpers.client_at(built, dc=1, partition=1)
    got = helpers.get(built, reader1, key_y, timeout_s=0.5)
    assert got.value == "y-old"

    server_y = built.servers[built.topology.server(1, 1)]
    chain = server_y.store.chain(key_y)
    hidden = [v for v in chain if isinstance(v, CopsVersion) and not v.visible]
    assert len(hidden) == 1
    assert hidden[0].value == "Y-new"

    built.faults.heal_all()
    helpers.settle(built, 0.5)
    assert helpers.get(built, reader1, key_y).value == "Y-new"
    assert all(
        v.visible for v in chain if isinstance(v, CopsVersion)
    )


def test_visibility_flag_not_shared_across_dcs(built):
    """The replicated object is copied per DC: hiding it at one replica
    must not hide it at its source."""
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "v")
    helpers.settle(built, 0.5)
    versions = []
    for dc in range(3):
        server = built.servers[built.topology.server(dc, 0)]
        head = server.store.freshest(key)
        assert head.value == "v"
        versions.append(head)
    assert len({id(v) for v in versions}) == 3  # three distinct objects
    versions[1].visible = False
    assert versions[0].visible and versions[2].visible
    versions[1].visible = True


def test_dep_checks_generate_messages():
    """Dependency checking costs messages; POCC's replication does not."""

    def run(protocol):
        config = ExperimentConfig(
            cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                                  keys_per_partition=40, protocol=protocol),
            workload=WorkloadConfig(clients_per_partition=2,
                                    think_time_s=0.004, gets_per_put=2),
            warmup_s=0.2,
            duration_s=1.0,
            seed=21,
        )
        return run_experiment(config)

    cops = run("cops")
    pocc = run("pocc")
    assert cops.total_ops > 0 and pocc.total_ops > 0
    # Same workload shape; the dependency-check round trips make COPS*
    # strictly chattier per operation.
    cops_msgs_per_op = cops.network_messages / cops.total_ops
    pocc_msgs_per_op = pocc.network_messages / pocc.total_ops
    assert cops_msgs_per_op > pocc_msgs_per_op


def test_visibility_lag_exceeds_pocc():
    def run(protocol):
        config = ExperimentConfig(
            cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                                  keys_per_partition=40, protocol=protocol),
            workload=WorkloadConfig(clients_per_partition=2,
                                    think_time_s=0.004, gets_per_put=2),
            warmup_s=0.2,
            duration_s=1.0,
            seed=13,
        )
        return run_experiment(config)

    cops = run("cops")
    pocc = run("pocc")
    assert cops.visibility_lag["count"] > 0
    # Receipt + dependency checking >= receipt.
    assert cops.visibility_lag["mean"] > pocc.visibility_lag["mean"]


def test_ro_tx_unsupported(built):
    client = helpers.client_at(built, dc=0)
    with pytest.raises(ProtocolError, match="RO-TX"):
        client.ro_tx([helpers.key_on_partition(built, 0)], lambda r: None)


def test_nil_read_adds_no_dependency(built):
    client = helpers.client_at(built, dc=0)
    got = helpers.get(built, client, "no-such-key")
    assert got.value is None
    assert client.nearest == {}


def test_reset_session_clears_context(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "v")
    assert client.nearest
    client.reset_session()
    assert client.nearest == {}


def test_gc_never_drops_freshest_visible(built):
    """GC must retain the freshest visible version even while newer
    invisible versions sit above it in the chain."""
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)
    seeder = helpers.client_at(built, dc=0)
    helpers.put(built, seeder, key_y, "visible-one")
    helpers.settle(built, 0.5)

    built.faults.partition_dcs([0], [1])
    writer0 = helpers.client_at(built, dc=0)
    helpers.put(built, writer0, key_x, "X")
    helpers.settle(built, 0.3)
    client2 = helpers.client_at(built, dc=2)
    helpers.get(built, client2, key_x)
    helpers.put(built, client2, key_y, "hidden")
    # Let several GC rounds run while the partition holds.
    helpers.settle(built, 1.5)

    reader1 = helpers.client_at(built, dc=1, partition=1)
    assert helpers.get(built, reader1, key_y).value == "visible-one"
    built.faults.heal_all()
    helpers.settle(built, 0.5)
