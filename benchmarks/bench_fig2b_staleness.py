"""Figure 2b — Cure* data staleness vs throughput.

Paper claim: the fraction of GETs returning old/unmerged items grows with
load (stabilization slows under CPU contention), reaching ~15% old / ~10%
unmerged near saturation and ~30% overloaded; affected chains hold several
fresher/unmerged versions."""

from benchmarks.common import run_figure


def test_fig2b_staleness(benchmark):
    data = run_figure(benchmark, "2b")
    old = data.ys("% old")
    unmerged = data.ys("% unmerged")
    fresher = data.ys("# fresher versions")

    # Staleness exists and grows with load (compare load extremes).
    assert max(old) > 0
    assert old[-1] >= old[0]
    assert unmerged[-1] >= unmerged[0]

    # Unmerged is a superset of old at every load point (Section V-B: an
    # old item is also unmerged).
    for o, u in zip(old, unmerged):
        assert u >= o - 1e-9

    # Affected reads have at least one fresher version by definition.
    for o, f in zip(old, fresher):
        if o > 0:
            assert f >= 1.0
