"""Discrete-event simulation substrate.

This package replaces the paper's AWS testbed (see DESIGN.md): a
deterministic event-heap scheduler (:mod:`repro.sim.engine`), lossless FIFO
point-to-point channels with a geo latency model (:mod:`repro.sim.network`,
:mod:`repro.sim.latency`), fault injection for network partitions
(:mod:`repro.sim.faults`), seeded RNG streams (:mod:`repro.sim.rng`) and an
optional generator-based process layer (:mod:`repro.sim.process`).
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.faults import FaultInjector
from repro.sim.latency import (
    ConstantLatency,
    GeoLatencyModel,
    LatencyModel,
    UniformLatency,
)
from repro.sim.network import Endpoint, Network, NetworkStats
from repro.sim.process import Environment, Gate, Process, Timeout
from repro.sim.rng import RngRegistry

__all__ = [
    "ConstantLatency",
    "Endpoint",
    "Environment",
    "EventHandle",
    "FaultInjector",
    "Gate",
    "GeoLatencyModel",
    "LatencyModel",
    "Network",
    "NetworkStats",
    "Process",
    "RngRegistry",
    "Simulator",
    "Timeout",
    "UniformLatency",
]
