"""Per-node physical clocks: loosely synchronized, strictly monotonic.

Section IV: "each server is equipped with a physical clock, which provides
monotonically increasing timestamps [...] loosely synchronized by a time
synchronization protocol, such as NTP.  The correctness of our protocol does
not depend on the synchronization precision."

The model: a node's clock reads ``(1 + drift) * sim_time + offset`` in
microseconds, then clamps to strict monotonicity (two reads never return the
same value, mirroring timestamp-uniqueness per node).  The inverse mapping
:meth:`sim_time_when` lets a server compute exactly when its own clock will
pass a given timestamp — the paper's "wait until max{DV_c} < Clock"
(Algorithm 2 line 7) becomes a scheduled wake-up instead of busy polling.
"""

from __future__ import annotations

from typing import Protocol

from repro.common.config import ClockConfig
from repro.common.errors import SimulationError
from repro.common.types import Micros

_US_PER_S = 1_000_000


class TimeSource(Protocol):
    """Anything exposing a monotonically nondecreasing ``now`` in seconds.

    The discrete-event :class:`repro.sim.engine.Simulator` and the live
    asyncio runtime both qualify, so the same clock model (offset, drift,
    strict per-node monotonicity) backs timestamps on both backends.
    """

    @property
    def now(self) -> float: ...


class PhysicalClock:
    """One node's skewed-but-monotonic physical clock.

    Drift accumulates from the clock's *construction instant*, not from
    the time source's epoch: the simulation constructs every clock at
    ``t=0`` (where the two are the same thing, to the bit), but the live
    backend's epoch is a fixed wall-clock date — scaling that absolute
    time by a per-node rate would fabricate minutes of divergence out of
    a few ppm of drift.
    """

    __slots__ = ("_sim", "_offset_us", "_rate", "_last_read",
                 "_base_s", "_base_us", "_step_epoch")

    def __init__(
        self,
        sim: TimeSource,
        offset_us: int = 0,
        drift_ppm: float = 0.0,
    ):
        self._sim = sim
        self._offset_us = int(offset_us)
        self._rate = 1.0 + drift_ppm * 1e-6
        if self._rate <= 0:
            raise SimulationError("clock rate must be positive")
        self._last_read: Micros = 0
        self._base_s = sim.now
        self._base_us = self._base_s * _US_PER_S
        self._step_epoch = 0

    @classmethod
    def sample(
        cls, sim: TimeSource, config: ClockConfig, rng
    ) -> "PhysicalClock":
        """Draw a clock with offset/drift sampled per ``config``."""
        offset = rng.randint(-config.max_offset_us, config.max_offset_us)
        drift = rng.uniform(-config.max_drift_ppm, config.max_drift_ppm)
        return cls(sim, offset_us=offset, drift_ppm=drift)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _raw(self) -> Micros:
        """``base + rate * elapsed-since-construction`` in micros.

        With ``base == 0`` (every simulated clock) this is bit-identical
        to ``int(now * rate * 1e6)``: determinism tests pin that.
        """
        return int(
            self._base_us
            + (self._sim.now - self._base_s) * self._rate * _US_PER_S
        ) + self._offset_us

    def micros(self) -> Micros:
        """Current clock value; strictly greater than any previous read."""
        raw = self._raw()
        if raw <= self._last_read:
            raw = self._last_read + 1
        self._last_read = raw
        return raw

    def peek_micros(self) -> Micros:
        """Current clock value without bumping monotonicity state."""
        return max(self._raw(), self._last_read)

    def advance_past(self, floor_us: Micros) -> None:
        """Raise the monotonicity floor: every future read exceeds
        ``floor_us``.

        Crash recovery uses this to restore timestamp discipline: a
        restarted server must never stamp a new update at or below the
        update time of any version it already made durable, even if the
        operating-system clock stepped backwards across the restart.
        """
        if floor_us > self._last_read:
            self._last_read = floor_us

    # ------------------------------------------------------------------
    # Skew-spike fault injection
    # ------------------------------------------------------------------
    def step(self, delta_us: int) -> None:
        """Step the clock offset by ``delta_us`` (an NTP-style skew spike).

        A positive step jumps the clock forward; a negative step pulls it
        back (reads stay monotonic through the ``_last_read`` floor, but
        the raw clock — and therefore :meth:`sim_time_when` — really does
        move).  Bumping :attr:`step_epoch` lets clock-wait schedulers
        detect that a wake-up computed before the step may now fire too
        early and must re-check its predicate.
        """
        self._offset_us += int(delta_us)
        self._step_epoch += 1

    @property
    def step_epoch(self) -> int:
        """Incremented on every injected :meth:`step`; 0 when unfaulted."""
        return self._step_epoch

    # ------------------------------------------------------------------
    # Inversion
    # ------------------------------------------------------------------
    def sim_time_when(self, target_us: Micros) -> float:
        """Earliest simulated time at which ``micros()`` can exceed
        ``target_us``.  Used to schedule clock-wait wake-ups exactly."""
        # Invert raw = base + (t - base_s) * rate * 1e6 + offset > target
        # (reduces to the pre-split formula when base == 0).
        needed = self._base_s + (
            (target_us + 1 - self._offset_us - self._base_us)
            / (_US_PER_S * self._rate)
        )
        return max(needed, self._sim.now)

    @property
    def offset_us(self) -> int:
        return self._offset_us

    @property
    def drift_ppm(self) -> float:
        return (self._rate - 1.0) * 1e6
