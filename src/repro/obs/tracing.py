"""Sampled causal-lifecycle tracing for live writes.

A traced write's id **is** its version identity ``(sr, ut)`` — source
replica and update timestamp, globally unique by construction and
already carried in every ``Replicate`` / ``ReplicateBatch`` frame the
engine ships.  Reusing it means trace propagation adds **zero bytes**
to any wire frame: the origin and every remote replica reconstruct the
same ``"sr:ut"`` id independently, and the off-state is trivially
byte-identical to an engine without tracing (pinned by test).

Sampling is deterministic and coordination-free for the same reason:
a write is traced iff ``ut % sample_every == 0``.  The update micros
are effectively uniform modulo small constants, every process applies
the same predicate to the same ``ut``, so all five span points of one
write — across processes — are kept or dropped together:

``put`` → ``wal_synced`` → ``replicate_sent``   (at the origin)
``installed`` → ``visible``                     (at each remote)

Spans are appended as JSONL, one file per process under
``TelemetryConfig.trace_dir``; join on ``trace`` (the id) to rebuild a
write's timeline.  ``visible`` fires when the protocol actually lets
reads observe the version — immediately for optimistic protocols, at
the stability horizon for Cure*/GentleRain*/Okapi*/COPS*.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable

#: Span buffer flushed to disk at this many pending lines (and on close).
FLUSH_EVERY = 64

SPAN_EVENTS = ("put", "wal_synced", "replicate_sent", "installed",
               "visible")


class TraceLog:
    """One process's JSONL span sink.

    ``now_fn`` supplies timestamps on the deployment's shared time axis
    (:data:`repro.runtime.transport.LIVE_EPOCH_UNIX_S` seconds), so
    spans from different processes line up without clock negotiation
    beyond what the transport already does.
    """

    def __init__(self, path: str, sample_every: int,
                 now_fn: Callable[[], float]):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.path = path
        self.sample_every = sample_every
        self._now = now_fn
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._file = open(path, "a", encoding="utf-8")
        self._pending = 0
        self.spans_written = 0
        self._closed = False

    def sampled(self, ut: int) -> bool:
        """The deterministic sampling predicate (see module docstring)."""
        return ut % self.sample_every == 0

    def span(self, event: str, sr: int, ut: int, node: str,
             **fields: Any) -> None:
        """Append one span point for the write ``(sr, ut)``.

        Callers check :meth:`sampled` first — the predicate is the one
        branch allowed on the hot path; building the record is not.
        """
        if self._closed:
            return
        record = {
            "trace": f"{sr}:{ut}",
            "event": event,
            "t": round(self._now(), 6),
            "node": node,
        }
        if fields:
            record.update(fields)
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.spans_written += 1
        self._pending += 1
        if self._pending >= FLUSH_EVERY:
            self._file.flush()
            self._pending = 0

    def flush(self) -> None:
        if not self._closed:
            self._file.flush()
            self._pending = 0

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True


def read_spans(path: str) -> list[dict]:
    """Load one trace file (tests and ad-hoc analysis)."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def group_by_trace(spans: list[dict]) -> dict[str, list[dict]]:
    """Spans grouped by trace id, each group in emission (time) order."""
    groups: dict[str, list[dict]] = {}
    for span in spans:
        groups.setdefault(span["trace"], []).append(span)
    for group in groups.values():
        group.sort(key=lambda s: s["t"])
    return groups
