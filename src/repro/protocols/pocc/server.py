"""The POCC server: Algorithm 2 of the paper, handler by handler.

The optimism: a GET returns the *freshest locally known* version (the chain
head), whether or not it is stable, after making sure — via the waiting
condition on the version vector — that no dependency of the client's history
can still be missing from this node.  Transactions draw their snapshot
boundary at ``max(VV, RDV_c)``: items *received* when the transaction
starts, rather than items *stable* (Cure*'s boundary).
"""

from __future__ import annotations

from repro.clocks.vector import vec_leq, vec_max
from repro.common.types import Micros
from repro.metrics.collectors import (
    BLOCK_GET_VV,
    BLOCK_PUT_CLOCK,
    BLOCK_PUT_DEPS,
    BLOCK_SLICE_VV,
)
from repro.protocols import messages as m
from repro.protocols.base import CausalServer
from repro.storage.version import Version


class PoccServer(CausalServer):
    """Server ``p^m_n`` running the optimistic protocol."""

    # ------------------------------------------------------------------
    # GET (Algorithm 2 lines 1-4)
    # ------------------------------------------------------------------
    def handle_get(self, msg: m.GetReq) -> None:
        self.block_or_run(
            BLOCK_GET_VV,
            # Line 2: wait until VV[i] >= RDV_c[i] for all i != m.
            lambda: self.vv_covers(msg.rdv),
            lambda: self._serve_get(msg),
            payload=msg,
        )

    def _serve_get(self, msg: m.GetReq) -> None:
        # Line 3: the version with the highest timestamp — the chain head,
        # no traversal needed (the cost asymmetry vs. Cure*).
        version = self.store.freshest(msg.key)
        if version is None:
            self.send(msg.client, self.nil_reply(msg.key, msg.op_id))
            return
        # POCC always returns the chain head, so a GET is never "old";
        # recorded so the two systems' staleness series share denominators.
        self.metrics.record_get_staleness(0, 0)
        self.send(msg.client, self.reply_for(version, msg.op_id))

    # ------------------------------------------------------------------
    # PUT (Algorithm 2 lines 5-15)
    # ------------------------------------------------------------------
    def handle_put(self, msg: m.PutReq) -> None:
        if self._protocol.put_dependency_wait:
            # Line 6 (optional; enabled in the paper's evaluation): make
            # sure every version this update depends on is locally present,
            # as convergent conflict handling schemes other than
            # last-writer-wins require.
            self.block_or_run(
                BLOCK_PUT_DEPS,
                lambda: self.vv_covers(msg.dv),
                lambda: self._put_wait_clock(msg),
                payload=msg,
            )
        else:
            self._put_wait_clock(msg)

    def _put_wait_clock(self, msg: m.PutReq) -> None:
        # Line 7: wait until max{DV_c} < Clock so the new version's
        # timestamp dominates all its potential dependencies.
        max_dep: Micros = max(msg.dv, default=0)
        self.metrics.record_block_attempt(BLOCK_PUT_CLOCK)
        if self.clock.peek_micros() > max_dep:
            self._apply_put(msg)
            return
        blocked_at = self.rt.now

        def resume() -> None:
            self.metrics.record_block_started(BLOCK_PUT_CLOCK, blocked_at,
                                              self.rt.now - blocked_at)
            self.submit_local(self._service.resume_s, self._apply_put, msg)

        self.wait_for_clock(max_dep, resume)

    def _apply_put(self, msg: m.PutReq) -> None:
        # Lines 8-14: stamp, insert, replicate; line 15: reply with ut.
        version = self.create_version(msg.key, msg.value, tuple(msg.dv))
        self.send(msg.client, m.PutReply(ut=version.ut, op_id=msg.op_id))

    # ------------------------------------------------------------------
    # RO-TX coordinator (Algorithm 2 lines 29-38)
    # ------------------------------------------------------------------
    def handle_ro_tx(self, msg: m.RoTxReq) -> None:
        # Line 32: the snapshot visible to the transaction is bounded by
        # what this DC has *received* (VV), advanced to cover the client's
        # read dependencies — not by what is stable.
        tv = vec_max(self.vv, msg.rdv)
        self.coordinate_tx(msg, tv)

    # ------------------------------------------------------------------
    # Slice read (Algorithm 2 lines 39-47)
    # ------------------------------------------------------------------
    def handle_slice(self, msg: m.SliceReq) -> None:
        self.block_or_run(
            BLOCK_SLICE_VV,
            # Line 40: wait until VV >= TV on *every* entry, so all updates
            # inside the snapshot have been installed locally.
            lambda: vec_leq(msg.tv, self.vv),
            lambda: self._serve_slice(msg),
            payload=msg,
        )

    def _serve_slice(self, msg: m.SliceReq) -> None:
        tv = msg.tv

        def visible(version: Version) -> bool:
            # Line 43: the visible set is every version whose dependency
            # cut is inside the snapshot vector.
            return vec_leq(version.dv, tv)

        replies = []
        scanned_total = 0
        for key in msg.keys:
            chain = self.store.chain(key)
            if chain is None:
                replies.append(self.nil_reply(key, 0))
                continue
            version, scanned = chain.find_freshest(visible)
            scanned_total += scanned
            if version is None:
                # No version inside the snapshot (can only happen before
                # preloading or after an unsafe GC); fall back to oldest.
                version = next(reversed(list(chain)))
            fresher = chain.versions_newer_than(version)
            # In POCC everything behind the returned version is already
            # merged, so "old" and "unmerged" coincide (Section V-C).
            self.metrics.record_tx_staleness(fresher, fresher)
            replies.append(self.reply_for(version, 0))
        response = m.SliceResp(versions=replies, tx_id=msg.tx_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned_total
        self.submit_local(scan_cost, self.send_slice_resp, msg, response)
