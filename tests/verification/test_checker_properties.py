"""Property-based tests for the causal checker.

Strategy: generate random *consistent* executions — reads return a version
at or above the newest version of that key in the reader's (transitive)
causal past — and assert the checker accepts them; then corrupt one read to
return something older and assert the checker rejects."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verification.checker import CausalChecker
from repro.verification.history import order_of


def _merge_floor(floor, deps):
    for key, vid in deps.items():
        current = floor.get(key)
        if current is None or order_of(vid) > order_of(current):
            floor[key] = vid


def _simulate(seed: int, corrupt: bool):
    """Replay a random multi-client history through the checker.

    The generator maintains the true transitive causal past of every
    client (mirroring the causality definition, independently of the
    checker's code) so it can always construct legal reads.
    """
    rng = random.Random(seed)
    keys = [f"k{i}" for i in range(4)]
    clients = [f"c{i}" for i in range(3)]
    checker = CausalChecker()
    for client in clients:
        checker.register_client(client)

    versions = {key: [(key, 0, 0)] for key in keys}
    deps_of = {}  # vid -> its writer's causal past (key -> vid)
    floor = {c: {} for c in clients}
    next_ts = 1
    corrupted = False

    for step in range(60):
        client = rng.choice(clients)
        key = rng.choice(keys)
        time_s = float(step)
        if rng.random() < 0.4:  # write
            vid = (key, rng.randrange(3), next_ts)
            next_ts += 1
            versions[key].append(vid)
            deps_of[vid] = dict(floor[client])
            checker.on_write(client, key, vid, time_s)
            floor[client][key] = vid
        else:  # read
            minimum = floor[client].get(key)
            candidates = [
                v for v in versions[key]
                if minimum is None or order_of(v) >= order_of(minimum)
            ]
            vid = rng.choice(candidates)
            if corrupt and not corrupted and minimum is not None:
                older = [
                    v for v in versions[key]
                    if order_of(v) < order_of(minimum)
                ]
                if older:
                    vid = older[0]
                    corrupted = True
            checker.on_read(client, key, vid, time_s)
            # Absorb transitively, exactly as causality demands.
            _merge_floor(floor[client], deps_of.get(vid, {}))
            current = floor[client].get(key)
            if current is None or order_of(vid) > order_of(current):
                floor[client][key] = vid
    return checker, corrupted


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_consistent_histories_accepted(seed):
    checker, _ = _simulate(seed, corrupt=False)
    assert checker.ok, checker.violations[:3]


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_corrupted_histories_rejected(seed):
    checker, corrupted = _simulate(seed, corrupt=True)
    if corrupted:
        assert not checker.ok
    else:  # the random walk never created a corruptible read
        assert checker.ok
