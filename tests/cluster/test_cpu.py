"""Tests for the per-node CPU scheduler."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator
from repro.cluster.cpu import CpuScheduler


def test_single_job_runs_after_service_time():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    done = []
    cpu.submit(0.5, lambda: done.append(sim.now))
    sim.run()
    assert done == [0.5]


def test_jobs_queue_fifo_on_one_core():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    done = []
    for name in ("a", "b", "c"):
        cpu.submit(1.0, lambda n=name: done.append((sim.now, n)))
    sim.run()
    assert done == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_two_cores_run_in_parallel():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=2)
    done = []
    for name in ("a", "b", "c"):
        cpu.submit(1.0, lambda n=name: done.append((sim.now, n)))
    sim.run()
    assert done == [(1.0, "a"), (1.0, "b"), (2.0, "c")]


def test_queue_length_and_busy_cores():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    cpu.submit(1.0, lambda: None)
    cpu.submit(1.0, lambda: None)
    assert cpu.busy_cores == 1
    assert cpu.queue_length == 1
    sim.run()
    assert cpu.busy_cores == 0
    assert cpu.queue_length == 0


def test_jobs_submitted_by_jobs_run():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    done = []

    def second():
        done.append(("second", sim.now))

    def first():
        done.append(("first", sim.now))
        cpu.submit(0.5, second)

    cpu.submit(1.0, first)
    sim.run()
    assert done == [("first", 1.0), ("second", 1.5)]


def test_zero_service_time_still_asynchronous():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    done = []
    cpu.submit(0.0, lambda: done.append(sim.now))
    assert done == []  # runs inside the event loop, not synchronously
    sim.run()
    assert done == [0.0]


def test_negative_service_time_rejected():
    cpu = CpuScheduler(Simulator(), cores=1)
    with pytest.raises(SimulationError):
        cpu.submit(-0.1, lambda: None)


def test_zero_cores_rejected():
    with pytest.raises(SimulationError):
        CpuScheduler(Simulator(), cores=0)


def test_busy_time_and_utilization():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=2)
    for _ in range(4):
        cpu.submit(1.0, lambda: None)
    sim.run()
    # 4 seconds of work over 2 seconds of wall on 2 cores = fully busy.
    assert cpu.busy_time_s == pytest.approx(4.0)
    assert cpu.utilization() == pytest.approx(1.0)
    assert cpu.jobs_completed == 4


def test_utilization_with_idle_time():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    cpu.submit(1.0, lambda: None)
    sim.schedule(4.0, lambda: None)  # extend the run
    sim.run()
    assert cpu.utilization() == pytest.approx(0.25)


def test_queue_wait_accounting():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    cpu.submit(1.0, lambda: None)
    cpu.submit(1.0, lambda: None)  # waits 1s
    cpu.submit(1.0, lambda: None)  # waits 2s
    sim.run()
    assert cpu.queue_wait_s == pytest.approx(3.0)
