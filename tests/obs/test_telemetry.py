"""The telemetry registry: instruments, rendering, and snapshots.

The registry is the contract between the hot paths (one attribute
increment / one histogram record) and the scrape side (`/metrics`,
`/vars.json`, ``repro-top``).  These tests pin the exposition format and
the family-presence guarantee the CI scrape gates on.
"""

import asyncio

from repro.obs.telemetry import (
    CLIENT_OP_KINDS,
    Counter,
    LoopLagProbe,
    Telemetry,
    _escape,
    _fmt,
    _label_str,
)


def test_families_render_before_any_sample():
    """Declared families expose HELP/TYPE from the very first scrape —
    endpoints must not grow families as traffic arrives (the CI presence
    gate scrapes early)."""
    t = Telemetry()
    t.family("repro_stable_lag_seconds", "gauge", "Stability lag.")
    text = t.render_prometheus()
    assert "# TYPE repro_stable_lag_seconds gauge" in text
    assert "# HELP repro_stable_lag_seconds Stability lag." in text
    # The built-in throughput family is pre-declared with zero cells for
    # every client-op kind, so monotonicity checks have a baseline.
    for kind in ("get", "put", "tx"):
        assert f'repro_client_ops_total{{kind="{kind}"}} 0' in text


def test_counter_cells_are_shared_and_monotone():
    t = Telemetry()
    a = t.counter("repro_widgets_total", labels=(("dc", "0"),))
    b = t.counter("repro_widgets_total", labels=(("dc", "0"),))
    assert a is b
    a.inc()
    a.inc(3)
    assert 'repro_widgets_total{dc="0"} 4' in t.render_prometheus()


def test_gauge_is_pull_model_and_crash_proof():
    t = Telemetry()
    state = {"depth": 7}
    t.gauge("repro_wait_queue_depth", lambda: state["depth"])
    assert "repro_wait_queue_depth 7" in t.render_prometheus()
    state["depth"] = 2  # no re-registration: the callback re-reads state
    assert "repro_wait_queue_depth 2" in t.render_prometheus()

    def broken():
        raise RuntimeError("server mid-teardown")

    t.gauge("repro_broken", broken)
    # A dying gauge renders 0 rather than failing the whole scrape.
    assert "repro_broken 0" in t.render_prometheus()


def test_summary_renders_quantiles_sum_and_count():
    t = Telemetry()
    hist = t.summary("repro_wal_fsync_seconds", labels=(("dc", "1"),))
    for _ in range(100):
        hist.record(0.002)
    text = t.render_prometheus()
    assert '# TYPE repro_wal_fsync_seconds summary' in text
    assert 'repro_wal_fsync_seconds{dc="1",quantile="0.99"}' in text
    assert 'repro_wal_fsync_seconds_count{dc="1"} 100' in text
    assert 'repro_wal_fsync_seconds_sum{dc="1"}' in text


def test_empty_summary_renders_zero_quantiles():
    t = Telemetry()
    t.summary("repro_visibility_lag_seconds")
    text = t.render_prometheus()
    assert 'repro_visibility_lag_seconds{quantile="0.5"} 0' in text
    assert "repro_visibility_lag_seconds_count 0" in text


def test_collector_yields_dynamic_label_sets():
    t = Telemetry()
    t.family("repro_link_fault_drops_total", "counter", "Drops.")
    drops = {}
    t.collector(lambda: [
        ("repro_link_fault_drops_total",
         (("src_dc", str(s)), ("dst_dc", str(d)), ("kind", k)), n)
        for (s, d, k), n in sorted(drops.items())
    ])
    assert ('repro_link_fault_drops_total{src_dc'
            not in t.render_prometheus())
    drops[(0, 1, "Replicate")] = 5
    text = t.render_prometheus()
    assert ('repro_link_fault_drops_total{src_dc="0",dst_dc="1",'
            'kind="Replicate"} 5' in text)


def test_count_message_folds_client_ops():
    t = Telemetry()
    t.count_message("GetReq")
    t.count_message("PutReq")
    t.count_message("CopsPutReq")
    t.count_message("RoTxReq")
    t.count_message("Replicate")  # not client-facing: no fold
    text = t.render_prometheus()
    assert 'repro_messages_total{kind="Replicate"} 1' in text
    assert 'repro_client_ops_total{kind="get"} 1' in text
    assert 'repro_client_ops_total{kind="put"} 2' in text
    assert 'repro_client_ops_total{kind="tx"} 1' in text
    # Every kind in the fold table maps onto a pre-created cell.
    assert set(CLIENT_OP_KINDS.values()) == {"get", "put", "tx"}


def test_snapshot_mirrors_the_prometheus_samples():
    t = Telemetry()
    t.counter("repro_things_total", labels=(("dc", "0"),)).inc(9)
    t.gauge("repro_depth", lambda: 4.5)
    t.summary("repro_lag_seconds").record(0.25)
    snap = t.snapshot()
    assert snap["uptime_seconds"] >= 0
    metrics = snap["metrics"]
    assert metrics["repro_things_total"]['{dc="0"}'] == 9
    assert metrics["repro_depth"]["_"] == 4.5
    summary = metrics["repro_lag_seconds"]["_"]
    assert summary["count"] == 1
    assert summary["p99"] > 0


def test_label_escaping_and_number_formatting():
    assert _label_str(()) == ""
    assert _label_str((("k", 'a"b'),)) == '{k="a\\"b"}'
    assert _escape("line\nbreak") == r"line\nbreak"
    assert _fmt(12) == "12"
    assert _fmt(3.0) == "3"  # integral floats render without the dot
    assert _fmt(0.125) == "0.125"


def test_counter_slots_keep_the_cell_tiny():
    cell = Counter()
    assert not hasattr(cell, "__dict__")
    cell.inc(2)
    assert cell.value == 2


def test_loop_lag_probe_measures_and_stops():
    async def scenario():
        loop = asyncio.get_running_loop()
        probe = LoopLagProbe(loop, interval_s=0.01)
        probe.start()
        await asyncio.sleep(0.05)
        assert probe.last_lag_s >= 0.0
        assert probe.max_lag_s >= probe.last_lag_s
        probe.stop()
        assert probe._handle is None
        probe.stop()  # idempotent

    asyncio.run(scenario())
