"""Protocol messages with byte-size accounting.

Field names follow the paper's pseudo-code: ``rdv`` is the client's read
dependency vector, ``dv`` a dependency vector, ``ut`` an update timestamp,
``sr`` a source replica, ``tv`` a transaction snapshot vector.

Sizes approximate a compact binary encoding of the paper's setup (8-byte
keys and values, 8-byte timestamps, M-entry vectors); they feed the
communication-overhead comparison, not any protocol decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.types import Address, Micros, ReplicaId
from repro.storage.version import Version

HEADER_BYTES = 20
KEY_BYTES = 8
VALUE_BYTES = 8
TS_BYTES = 8
ID_BYTES = 4


def vector_bytes(vec: Sequence[Micros]) -> int:
    return TS_BYTES * len(vec)


def version_bytes(version: Version) -> int:
    """Wire size of one replicated/returned version ⟨k,v,sr,ut,dv⟩.

    Versions created by the explicit-dependency protocol (COPS*) carry a
    dependency *list* instead of a vector; the accounting follows suit.
    """
    deps = getattr(version, "deps", None)
    if deps is not None:
        metadata = Dependency.SIZE_BYTES * len(deps)
    else:
        metadata = vector_bytes(version.dv)
    return KEY_BYTES + VALUE_BYTES + ID_BYTES + TS_BYTES + metadata


# ----------------------------------------------------------------------
# Client <-> server
# ----------------------------------------------------------------------


@dataclass(slots=True)
class GetReq:
    """⟨GETReq k, RDV_c⟩ (Algorithm 1 line 2)."""

    key: str
    rdv: list[Micros]
    client: Address
    op_id: int
    #: True when the issuing session runs the pessimistic (HA) protocol.
    pessimistic: bool = False

    def size_bytes(self) -> int:
        return HEADER_BYTES + KEY_BYTES + vector_bytes(self.rdv) + ID_BYTES


@dataclass(slots=True)
class GetReply:
    """⟨GETReply v, ut, DV, sr⟩ (Algorithm 2 line 4)."""

    key: str
    value: Any
    ut: Micros
    dv: tuple[Micros, ...]
    sr: ReplicaId
    op_id: int

    def size_bytes(self) -> int:
        return (
            HEADER_BYTES + KEY_BYTES + VALUE_BYTES + TS_BYTES
            + vector_bytes(self.dv) + ID_BYTES
        )


@dataclass(slots=True)
class PutReq:
    """⟨PUTReq k, v, DV_c⟩ (Algorithm 1 line 10)."""

    key: str
    value: Any
    dv: list[Micros]
    client: Address
    op_id: int
    #: True when the issuing session runs the pessimistic (HA) protocol.
    pessimistic: bool = False

    def size_bytes(self) -> int:
        return (
            HEADER_BYTES + KEY_BYTES + VALUE_BYTES
            + vector_bytes(self.dv) + ID_BYTES
        )


@dataclass(slots=True)
class PutReply:
    """⟨PUTReply ut⟩ (Algorithm 2 line 15)."""

    ut: Micros
    op_id: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + TS_BYTES + ID_BYTES


@dataclass(slots=True)
class RoTxReq:
    """⟨RO-TX-Req χ, RDV_c⟩ (Algorithm 1 line 15)."""

    keys: tuple[str, ...]
    rdv: list[Micros]
    client: Address
    op_id: int
    #: True when the issuing session runs the pessimistic (HA) protocol.
    pessimistic: bool = False

    def size_bytes(self) -> int:
        return (
            HEADER_BYTES + KEY_BYTES * len(self.keys)
            + vector_bytes(self.rdv) + ID_BYTES
        )


@dataclass(slots=True)
class RoTxReply:
    """⟨RO-TX-Resp D⟩: the returned causal snapshot."""

    versions: list[GetReply]
    op_id: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + ID_BYTES + sum(
            v.size_bytes() - HEADER_BYTES for v in self.versions
        )


@dataclass(slots=True)
class SessionClosed:
    """HA-POCC: the server aborted a blocked optimistic session
    (Section III-B's partition-detection recovery)."""

    op_id: int
    reason: str = "network partition suspected"

    def size_bytes(self) -> int:
        return HEADER_BYTES + ID_BYTES


# ----------------------------------------------------------------------
# Server <-> server
# ----------------------------------------------------------------------


@dataclass(slots=True)
class Replicate:
    """⟨REPLICATE d⟩ (Algorithm 2 line 13)."""

    version: Version

    def size_bytes(self) -> int:
        return HEADER_BYTES + version_bytes(self.version)


@dataclass(slots=True)
class ReplicateBatch:
    """One flush of the protocol-level replication batcher.

    Carries every version the source partition created since its last
    flush, in creation (timestamp) order.  ``clock_ts`` is the source's
    clock read at flush time, stamped strictly after the newest buffered
    version: because channels are FIFO, once the batch is applied the
    receiver may advance ``VV[src_dc]`` to it — the batch doubles as a
    heartbeat, which is what lets the sender suppress the explicit one
    while writes flow.  ``dst`` (sent by Okapi* DC aggregators, 0 =
    absent) piggybacks the sender DC's data-center stable time on
    replication traffic, amortizing the UST gossip the same way.
    """

    versions: list[Version]
    src_dc: ReplicaId
    clock_ts: Micros
    dst: Micros = 0

    def size_bytes(self) -> int:
        return HEADER_BYTES + TS_BYTES + TS_BYTES + ID_BYTES + sum(
            version_bytes(v) for v in self.versions
        )


@dataclass(slots=True)
class Heartbeat:
    """⟨HEARTBEAT ct⟩ (Algorithm 2 line 24)."""

    ts: Micros
    src_dc: ReplicaId

    def size_bytes(self) -> int:
        return HEADER_BYTES + TS_BYTES + ID_BYTES


@dataclass(slots=True)
class SliceReq:
    """⟨SliceREQ χ_i, TV⟩ (Algorithm 2 line 34)."""

    keys: tuple[str, ...]
    tv: list[Micros]
    coordinator: Address
    tx_id: int
    #: True when the requesting client runs in pessimistic (HA) mode.
    pessimistic: bool = False

    def size_bytes(self) -> int:
        return (
            HEADER_BYTES + KEY_BYTES * len(self.keys)
            + vector_bytes(self.tv) + ID_BYTES
        )


@dataclass(slots=True)
class SliceResp:
    """⟨SliceRESP D⟩ (Algorithm 2 line 47)."""

    versions: list[GetReply]
    tx_id: int
    #: HA-POCC: the slice server aborted the blocked read after suspecting
    #: a network partition; the coordinator must abort the transaction.
    aborted: bool = False

    def size_bytes(self) -> int:
        return HEADER_BYTES + ID_BYTES + sum(
            v.size_bytes() - HEADER_BYTES for v in self.versions
        )


@dataclass(slots=True)
class ReplSyncReq:
    """Replication catch-up request (crash recovery, live backend).

    A partition server restarting from its write-ahead log asks every
    peer replica to re-send the updates it may have missed while down:
    ``vv`` is the requester's recovered version vector, and the peer
    answers with its own locally created versions newer than
    ``vv[peer.dc]`` (:class:`ReplCatchup` chunks).  Never sent by the
    simulation backend — crashes there are modeled at the DC level
    (:mod:`repro.protocols.recovery`), not at the process level.
    """

    vv: list[Micros]
    requester: Address

    def size_bytes(self) -> int:
        return HEADER_BYTES + vector_bytes(self.vv) + ID_BYTES


@dataclass(slots=True)
class ReplCatchup:
    """One chunk of a peer's answer to :class:`ReplSyncReq`.

    ``last`` marks the final chunk from this peer; the recovering server
    holds client-facing operations until every peer's final chunk (or a
    timeout) so a read cannot observe the pre-crash past as fresh state.
    Versions already present (delivered by the reconnected replication
    channel) are skipped by identity on receipt.
    """

    versions: list[Version]
    src_dc: ReplicaId
    last: bool

    def size_bytes(self) -> int:
        return HEADER_BYTES + ID_BYTES + sum(
            version_bytes(v) for v in self.versions
        )


@dataclass(slots=True)
class AeDigest:
    """Anti-entropy digest: what the sender holds from the receiver.

    ``vv`` is the sender's version vector (its per-source watermarks);
    ``uts`` are the update times of versions it actually received from
    the *receiver's* DC inside the configured window below
    ``vv[receiver.dc]``.  The receiver diffs ``uts`` against its own
    creations in that window and re-ships the gap (:class:`AeRepair`) —
    the set is what makes holes below a heartbeat-advanced watermark
    detectable at all.
    """

    vv: list[Micros]
    uts: tuple[Micros, ...]
    requester: Address

    def size_bytes(self) -> int:
        return (HEADER_BYTES + vector_bytes(self.vv)
                + TS_BYTES * len(self.uts) + ID_BYTES)


@dataclass(slots=True)
class AeRepair:
    """Anti-entropy repair: versions the digest proved missing."""

    versions: list[Version]
    src_dc: ReplicaId

    def size_bytes(self) -> int:
        return HEADER_BYTES + ID_BYTES + sum(
            version_bytes(v) for v in self.versions
        )


# ----------------------------------------------------------------------
# Stabilization (Cure* / HA-POCC) and garbage collection
# ----------------------------------------------------------------------


@dataclass(slots=True)
class StabPush:
    """A node reports its version vector to the DC aggregator."""

    vv: list[Micros]
    partition: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + vector_bytes(self.vv) + ID_BYTES


@dataclass(slots=True)
class StabBroadcast:
    """The aggregator broadcasts the new Global Stable Snapshot."""

    gss: list[Micros]

    def size_bytes(self) -> int:
        return HEADER_BYTES + vector_bytes(self.gss)


@dataclass(slots=True)
class UstGossip:
    """Okapi*'s inter-DC stabilization hop: one DC aggregator tells its
    peers the data-center stable time DST^m (the minimum local stable time
    across the DC's partitions).  The universal stable time is the minimum
    DST over all DCs — a timestamp every DC has fully received.  O(1)
    metadata: one hybrid-clock timestamp per message."""

    dst: Micros
    src_dc: ReplicaId

    def size_bytes(self) -> int:
        return HEADER_BYTES + TS_BYTES + ID_BYTES


# ----------------------------------------------------------------------
# Explicit dependency tracking (COPS* baseline)
# ----------------------------------------------------------------------


@dataclass(slots=True, frozen=True)
class Dependency:
    """One explicit dependency: a globally unique version id (key, ut, sr).

    The metadata element of the dependency-list family (COPS [8]): where
    the vector protocols ship M timestamps, COPS* ships one of these per
    *nearest* dependency.
    """

    key: str
    ut: Micros
    sr: ReplicaId

    #: Wire size of one dependency entry.
    SIZE_BYTES = KEY_BYTES + TS_BYTES + ID_BYTES

    def order_key(self) -> tuple[int, int]:
        from repro.common.types import version_order_key
        return version_order_key(self.ut, self.sr)


@dataclass(slots=True)
class CopsPutReq:
    """PUT carrying the client's nearest-dependency list (COPS put_after)."""

    key: str
    value: Any
    deps: tuple[Dependency, ...]
    client: Address
    op_id: int

    def size_bytes(self) -> int:
        return (
            HEADER_BYTES + KEY_BYTES + VALUE_BYTES + ID_BYTES
            + Dependency.SIZE_BYTES * len(self.deps)
        )


@dataclass(slots=True)
class DepCheck:
    """Intra-DC query: "has version >= (key, ut, sr) been applied here?"

    Sent by a server that received a replicated update to the local
    partition responsible for each of the update's nearest dependencies —
    the communication overhead Section I attributes to dependency-check
    protocols and that OCC eliminates.
    """

    key: str
    ut: Micros
    sr: ReplicaId
    requester: Address
    check_id: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + Dependency.SIZE_BYTES + ID_BYTES

    def dependency(self) -> Dependency:
        return Dependency(key=self.key, ut=self.ut, sr=self.sr)


@dataclass(slots=True)
class DepCheckResp:
    """Acknowledgement that a dependency is satisfied locally."""

    check_id: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + ID_BYTES


# ----------------------------------------------------------------------
# Elastic membership (epoch-versioned views + causal-safe resharding)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class ViewPropose:
    """Reshard driver -> every server: prepare for the next view.

    Carries the full proposed view ``(epoch, members, vnodes)`` so a
    server that missed earlier epochs (restarted mid-reshard) can still
    participate.  Answered with ``ViewAck(phase="prepare")``.
    """

    epoch: int
    members: tuple[int, ...]
    vnodes: int
    reply_to: Address

    def size_bytes(self) -> int:
        return (HEADER_BYTES + TS_BYTES + ID_BYTES * len(self.members)
                + ID_BYTES * 2)


@dataclass(slots=True)
class ViewAck:
    """A server acknowledges a reshard phase (``prepare``/``commit``)."""

    epoch: int
    phase: str
    dc: ReplicaId
    partition: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + TS_BYTES + ID_BYTES * 3


@dataclass(slots=True)
class MigrateStart:
    """Reshard driver -> every server: seal moving keys and stream them.

    On receipt every server seals (parks client ops for) the keys whose
    owner changes between its active view and the proposed epoch; donors
    then stream those chains to the new owner in their own DC
    (:class:`MigrateChunk`) and report :class:`MigrateDone`.  Servers
    with nothing to donate report ``MigrateDone(keys_moved=0)``
    immediately — the driver needs an answer from everyone.
    """

    epoch: int
    reply_to: Address

    def size_bytes(self) -> int:
        return HEADER_BYTES + TS_BYTES + ID_BYTES


@dataclass(slots=True)
class MigrateChunk:
    """One WAL-logged chunk of a migrating key range.

    Carries full version chains (values, update times, dependency
    vectors/lists — the causal metadata) plus, on the final chunk, the
    donor's version vector: the new owner merges it only once it holds
    every streamed version, so it never claims coverage it lacks.
    The receiver persists the chunk before acking (group commit holds
    the ack exactly as it holds client acks), which is what makes a
    joiner SIGKILL recoverable with zero acknowledged-write loss.
    """

    epoch: int
    src_dc: ReplicaId
    src_partition: int
    seq: int
    versions: list[Version]
    vv: list[Micros]
    last: bool = False

    def size_bytes(self) -> int:
        return (HEADER_BYTES + TS_BYTES + ID_BYTES * 3
                + vector_bytes(self.vv)
                + sum(version_bytes(v) for v in self.versions))


@dataclass(slots=True)
class MigrateAck:
    """New owner -> donor: chunk ``seq`` is applied *and* durable."""

    epoch: int
    partition: int
    seq: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + TS_BYTES + ID_BYTES * 2


@dataclass(slots=True)
class MigrateDone:
    """Donor -> reshard driver: every chunk acked; totals for the gate."""

    epoch: int
    dc: ReplicaId
    partition: int
    keys_moved: int
    bytes_moved: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + TS_BYTES + ID_BYTES * 4


@dataclass(slots=True)
class ViewCommit:
    """Reshard driver -> every server: the ownership flip.

    Sent only after every donor's chunks are acked-durable and the
    drain window passed; servers WAL-log the view, adopt it, drop the
    chains they no longer own and answer parked ops with
    :class:`NotOwner`.  Answered with ``ViewAck(phase="commit")``.
    """

    epoch: int
    members: tuple[int, ...]
    vnodes: int

    def size_bytes(self) -> int:
        return (HEADER_BYTES + TS_BYTES + ID_BYTES * len(self.members)
                + ID_BYTES)


@dataclass(slots=True)
class ViewGossip:
    """Periodic view exchange between servers (anti-entropy for views).

    A server that missed a commit (crashed bystander) adopts any higher
    committed epoch it hears about; lower-epoch gossip is answered with
    the sender's own newer view.
    """

    epoch: int
    members: tuple[int, ...]
    vnodes: int

    def size_bytes(self) -> int:
        return (HEADER_BYTES + TS_BYTES + ID_BYTES * len(self.members)
                + ID_BYTES)


@dataclass(slots=True)
class NotOwner:
    """Server -> client: this key moved; retry against the new view.

    Carries the committed view so the client can re-place *all* keys at
    once instead of learning one redirect per key.  The client retries
    the same op (same ``op_id``) after a jittered backoff.
    """

    op_id: int
    key: str
    epoch: int
    members: tuple[int, ...]
    vnodes: int

    def size_bytes(self) -> int:
        return (HEADER_BYTES + KEY_BYTES + TS_BYTES
                + ID_BYTES * len(self.members) + ID_BYTES * 2)


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------


@dataclass(slots=True)
class GcPush:
    """A node reports min(active transaction snapshots, else VV)."""

    vec: list[Micros]
    partition: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + vector_bytes(self.vec) + ID_BYTES


@dataclass(slots=True)
class GcBroadcast:
    """The aggregator broadcasts the garbage-collection vector GV."""

    gv: list[Micros]

    def size_bytes(self) -> int:
        return HEADER_BYTES + vector_bytes(self.gv)
