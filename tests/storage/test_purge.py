"""PartitionStore.purge: recovery-time discarding (may remove heads)."""

from repro.storage.store import PartitionStore
from repro.storage.version import Version


def _version(key, ut, sr=0, dv=(0, 0, 0)):
    return Version(key=key, value=f"v{ut}", sr=sr, ut=ut, dv=dv)


def test_purge_removes_matching_versions_everywhere():
    store = PartitionStore()
    for ut in (10, 20, 30):
        store.insert(_version("a", ut))
    store.insert(_version("b", 15))
    removed = store.purge(lambda v: v.ut > 15)
    assert {v.ut for v in removed} == {20, 30}
    assert store.freshest("a").ut == 10
    assert store.freshest("b").ut == 15


def test_purge_can_empty_a_chain():
    store = PartitionStore()
    store.insert(_version("a", 10))
    removed = store.purge(lambda v: True)
    assert len(removed) == 1
    assert store.freshest("a") is None


def test_purge_keeps_lww_order():
    store = PartitionStore()
    for ut in (10, 30, 20, 40):
        store.insert(_version("a", ut))
    store.purge(lambda v: v.ut == 30)
    chain = store.chain("a")
    assert [v.ut for v in chain] == [40, 20, 10]


def test_purge_no_match_is_noop():
    store = PartitionStore()
    store.insert(_version("a", 10))
    assert store.purge(lambda v: False) == []
    assert store.freshest("a").ut == 10


def test_purge_returns_version_objects():
    store = PartitionStore()
    doomed = _version("a", 99, sr=1)
    store.insert(doomed)
    removed = store.purge(lambda v: v.sr == 1)
    assert removed == [doomed]
