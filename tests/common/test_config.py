"""Tests for configuration validation and presets."""

import pytest

from repro.common.config import (
    ClockConfig,
    ClusterConfig,
    ExperimentConfig,
    LatencyConfig,
    ProtocolConfig,
    ServiceTimeConfig,
    WorkloadConfig,
    paper_scale_cluster,
    smoke_scale_cluster,
)
from repro.common.errors import ConfigError


def test_default_experiment_validates():
    ExperimentConfig().validate()


def test_paper_scale_matches_section_5a():
    cluster = paper_scale_cluster()
    assert cluster.num_dcs == 3
    assert cluster.num_partitions == 32
    assert cluster.num_nodes == 96
    cluster.validate()


def test_smoke_scale_validates():
    smoke_scale_cluster("cure").validate()


def test_protocol_defaults_match_paper():
    protocol = ProtocolConfig()
    assert protocol.heartbeat_interval_s == pytest.approx(0.001)
    assert protocol.stabilization_interval_s == pytest.approx(0.005)
    assert protocol.put_dependency_wait is True


def test_workload_defaults_match_paper():
    workload = WorkloadConfig()
    assert workload.think_time_s == pytest.approx(0.025)
    assert workload.zipf_theta == pytest.approx(0.99)


def test_cluster_rejects_single_dc():
    with pytest.raises(ConfigError):
        ClusterConfig(num_dcs=1).validate()


def test_cluster_rejects_zero_partitions():
    with pytest.raises(ConfigError):
        ClusterConfig(num_partitions=0).validate()


def test_clock_config_rejects_negative():
    with pytest.raises(ConfigError):
        ClockConfig(max_offset_us=-1).validate()
    with pytest.raises(ConfigError):
        ClockConfig(max_drift_ppm=-1.0).validate()


def test_service_times_reject_negative():
    with pytest.raises(ConfigError):
        ServiceTimeConfig(get_s=-0.1).validate()


def test_protocol_config_rejects_nonpositive_intervals():
    for field, value in (
        ("heartbeat_interval_s", 0.0),
        ("stabilization_interval_s", -1.0),
        ("gc_interval_s", 0.0),
        ("block_timeout_s", 0.0),
        ("ha_stabilization_interval_s", 0.0),
        ("ha_promotion_retry_s", 0.0),
    ):
        with pytest.raises(ConfigError):
            ProtocolConfig(**{field: value}).validate()


def test_workload_kind_checked():
    cluster = ClusterConfig()
    with pytest.raises(ConfigError):
        WorkloadConfig(kind="nonsense").validate(cluster)


def test_workload_tx_partitions_bounds():
    cluster = ClusterConfig(num_partitions=4)
    WorkloadConfig(kind="ro_tx", tx_partitions=4).validate(cluster)
    with pytest.raises(ConfigError):
        WorkloadConfig(kind="ro_tx", tx_partitions=5).validate(cluster)


def test_experiment_rejects_bad_schedule():
    with pytest.raises(ConfigError):
        ExperimentConfig(warmup_s=-1.0).validate()
    with pytest.raises(ConfigError):
        ExperimentConfig(duration_s=0.0).validate()


def test_with_protocol_copies():
    base = ClusterConfig(protocol="pocc")
    other = base.with_protocol("cure")
    assert other.protocol == "cure"
    assert base.protocol == "pocc"
    assert other.num_partitions == base.num_partitions


def test_describe_is_flat_and_complete():
    description = ExperimentConfig(name="x").describe()
    for key in ("name", "protocol", "partitions", "workload", "seed"):
        assert key in description


def test_latency_matrix_symmetric_defaults():
    config = LatencyConfig()
    for i in range(3):
        for j in range(3):
            assert config.inter_dc_s[i][j] == config.inter_dc_s[j][i]
        assert config.inter_dc_s[i][i] == 0.0
