"""Plain-text rendering of measurement series: tables and sparklines.

Used by the CLI and examples to show figure-shaped data in a terminal
without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a numeric series (empty string for none)."""
    if not values:
        return ""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return " " * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if not math.isfinite(value):
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_LEVELS[0])
        else:
            index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def format_si(value: float, digits: int = 3) -> str:
    """Engineering-style formatting: 12_300 -> '12.3k', 0.0042 -> '4.2m'."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if magnitude >= threshold:
            return f"{value / threshold:.{digits}g}{suffix}"
    for threshold, suffix in ((1e-0, ""), (1e-3, "m"), (1e-6, "µ")):
        if magnitude >= threshold:
            return f"{value / threshold:.{digits}g}{suffix}"
    return f"{value / 1e-9:.{digits}g}n"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    min_width: int = 10,
) -> str:
    """A fixed-width table; numeric cells are compacted with SI suffixes."""
    formatted_rows = []
    for row in rows:
        formatted = []
        for cell in row:
            if isinstance(cell, float):
                formatted.append(format_si(cell))
            else:
                formatted.append(str(cell))
        formatted_rows.append(formatted)
    widths = [max(min_width, len(h) + 2) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell) + 2)
    lines = ["".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("".join("-" * (w - 2) + "  " for w in widths).rstrip())
    for row in formatted_rows:
        lines.append("".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_summary(name: str, values: Sequence[float]) -> str:
    """One line: name, min/max, and a sparkline of the trajectory."""
    if not values:
        return f"{name}: (no data)"
    return (
        f"{name}: min={format_si(min(values))} max={format_si(max(values))} "
        f"{sparkline(values)}"
    )
