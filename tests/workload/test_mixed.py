"""MixedWorkload: ratio fidelity, locality, and end-to-end safety."""

import random
from collections import Counter

import pytest

from repro.cluster.topology import KeyPools, Topology
from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.common.errors import ConfigError
from repro.harness.experiment import run_experiment
from repro.workload.generators import MixedWorkload, make_workload


def _pools(partitions=4, keys=100):
    return KeyPools(Topology(3, partitions), keys)


def _mixed(read=0.6, tx=0.2, rmw=0.0, seed=5, partitions=4):
    return MixedWorkload(
        _pools(partitions),
        read_ratio=read,
        tx_ratio=tx,
        tx_partitions=2,
        rmw_locality=rmw,
        zipf_theta=0.99,
        rng=random.Random(seed),
    )


def _draw(workload, n=20_000):
    return Counter(workload.next_op().kind for _ in range(n))


def test_ratios_respected():
    counts = _draw(_mixed(read=0.6, tx=0.2))
    total = sum(counts.values())
    assert counts["get"] / total == pytest.approx(0.6, abs=0.02)
    assert counts["ro_tx"] / total == pytest.approx(0.2, abs=0.02)
    assert counts["put"] / total == pytest.approx(0.2, abs=0.02)


def test_all_reads_yields_no_puts():
    counts = _draw(_mixed(read=1.0, tx=0.0), n=2_000)
    assert set(counts) == {"get"}


def test_all_writes():
    counts = _draw(_mixed(read=0.0, tx=0.0), n=2_000)
    assert set(counts) == {"put"}


def test_tx_spans_distinct_partitions():
    workload = _mixed(read=0.0, tx=1.0, partitions=4)
    pools = _pools(4)
    for _ in range(200):
        op = workload.next_op()
        partitions = {pools.topology.partition_of(k) for k in op.keys}
        assert len(partitions) == len(op.keys) == 2


def test_rmw_locality_rereads_last_write():
    workload = _mixed(read=0.5, tx=0.0, rmw=1.0)
    last_put = None
    rereads = 0
    reads_after_put = 0
    for _ in range(5_000):
        op = workload.next_op()
        if op.kind == "put":
            last_put = op.key
        elif last_put is not None:
            reads_after_put += 1
            if op.key == last_put:
                rereads += 1
    assert reads_after_put > 0
    # With locality 1.0 every read after the first write targets it.
    assert rereads == reads_after_put


def test_zero_locality_mostly_fresh_keys():
    workload = _mixed(read=0.5, tx=0.0, rmw=0.0)
    # No assertion on key equality (zipf collisions happen); just check
    # the generator does not *systematically* echo the last write.
    last_put = None
    echoes = 0
    reads = 0
    for _ in range(5_000):
        op = workload.next_op()
        if op.kind == "put":
            last_put = op.key
        elif last_put is not None:
            reads += 1
            echoes += op.key == last_put
    assert echoes / reads < 0.5


def test_invalid_ratios_rejected():
    with pytest.raises(ConfigError):
        _mixed(read=0.9, tx=0.2)
    with pytest.raises(ConfigError):
        _mixed(read=-0.1, tx=0.0)
    with pytest.raises(ConfigError):
        MixedWorkload(_pools(), read_ratio=0.5, tx_ratio=0.0,
                      tx_partitions=99, rmw_locality=0.0, zipf_theta=0.99,
                      rng=random.Random(1))


def test_make_workload_dispatches_mixed():
    config = WorkloadConfig(kind="mixed", read_ratio=0.7, tx_ratio=0.1)
    workload = make_workload(config, _pools(), random.Random(3))
    assert isinstance(workload, MixedWorkload)


def test_mixed_workload_end_to_end_causally_consistent():
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40, protocol="pocc"),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.6, tx_ratio=0.2,
                                rmw_locality=0.3,
                                clients_per_partition=3,
                                think_time_s=0.004),
        warmup_s=0.2,
        duration_s=1.2,
        seed=17,
        verify=True,
    )
    result = run_experiment(config)
    assert result.total_ops > 200
    assert result.verification["violations"] == 0
    assert result.divergences == 0
    # All three op kinds actually ran.
    for op in ("get", "put", "ro_tx"):
        assert result.op_stats[op]["count"] > 0
