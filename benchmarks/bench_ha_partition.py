"""Extension bench — availability through a network partition episode.

The paper defers the quantitative study of POCC under partitions to
future work (Section VII); this bench performs it on the simulated
substrate.  One partition episode (DC0 cut from DC1/DC2 for 2 s) hits a
running read-heavy workload:

* plain **POCC** sessions that establish a dependency across the cut
  block until the heal — closed-loop clients wedge and throughput sags
  for the whole episode;
* **HA-POCC** detects over-age blocked requests, closes those sessions,
  and the clients re-initialize in pessimistic mode (Section III-B's
  three phases), so the system keeps serving; after the heal the
  sessions promote back to optimistic operation.

Measured: total completed operations, per-250 ms throughput trough
during the episode, wedged clients at the end, and the demotion /
promotion counters.
"""

from pathlib import Path

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.harness.builders import build_cluster

RESULTS_DIR = Path(__file__).parent / "results"

WARMUP_S = 0.5
PARTITION_AT = 1.0
HEAL_AFTER = 2.0
END_AT = 5.0
SAMPLE_EVERY = 0.25


def _run_episode(protocol: str) -> dict:
    config = ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3, num_partitions=4, keys_per_partition=200,
            protocol=protocol,
            protocol_config=ProtocolConfig(
                block_timeout_s=0.3,       # fast partition detection
                ha_promotion_retry_s=0.5,  # eager promotion attempts
            ),
        ),
        workload=WorkloadConfig(kind="get_put", gets_per_put=4,
                                clients_per_partition=4,
                                think_time_s=0.010),
        warmup_s=WARMUP_S,
        duration_s=END_AT - WARMUP_S,
        seed=77,
        name=f"ha-episode-{protocol}",
    )
    built = build_cluster(config)
    built.faults.schedule_partition(PARTITION_AT, [0], [1, 2],
                                    heal_after=HEAL_AFTER)
    built.start_drivers()

    samples: list[tuple[float, int]] = []
    wedged_during_cut: list[int] = []

    def sample() -> None:
        completed = sum(c.ops_completed for c in built.clients)
        samples.append((built.sim.now, completed))
        if built.sim.now < END_AT - 1e-9:
            built.sim.schedule(SAMPLE_EVERY, sample)

    def census_wedged() -> None:
        wedged_during_cut.append(
            sum(1 for c in built.clients if c.has_pending)
        )

    built.sim.schedule(WARMUP_S, sample)
    # Deep into the cut (just before the heal), count stuck sessions.
    built.sim.schedule_at(PARTITION_AT + HEAL_AFTER - 0.1, census_wedged)
    built.metrics.arm(WARMUP_S)
    built.sim.run(until=END_AT)
    built.metrics.disarm(built.sim.now)

    # Quiesce: stop issuing, let in-flight work drain, then whatever is
    # still pending is genuinely wedged (nothing should be, post-heal).
    built.stop_drivers()
    built.sim.run(until=END_AT + 1.0)

    rates = [
        (samples[i][1] - samples[i - 1][1]) / (samples[i][0] - samples[i - 1][0])
        for i in range(1, len(samples))
    ]
    in_partition = [
        rate for (time, _), rate in zip(samples[1:], rates)
        if PARTITION_AT + 0.5 <= time <= PARTITION_AT + HEAL_AFTER
    ]
    return {
        "total_ops": samples[-1][1] - samples[0][1],
        "trough_ops_s": min(in_partition),
        "partition_mean_ops_s": sum(in_partition) / len(in_partition),
        "wedged_during_cut": wedged_during_cut[0],
        "wedged_after_drain": sum(1 for c in built.clients if c.has_pending),
        "demotions": built.metrics.sessions_demoted,
        "promotions": built.metrics.sessions_promoted,
        "rates": list(zip((t for t, _ in samples[1:]), rates)),
    }


def test_ha_pocc_availability_through_partition(benchmark):
    results = {}

    def run() -> None:
        for protocol in ("pocc", "ha_pocc"):
            results[protocol] = _run_episode(protocol)

    benchmark.pedantic(run, rounds=1, iterations=1)

    pocc, ha = results["pocc"], results["ha_pocc"]

    # Plain POCC wedges: some closed-loop clients are still blocked on
    # cross-cut dependencies deep into the episode, so its throughput
    # trough sits below HA-POCC's and it completes fewer operations.
    assert ha["total_ops"] > pocc["total_ops"]
    assert ha["trough_ops_s"] > pocc["trough_ops_s"]

    # The recovery machinery actually cycled: sessions demoted during
    # the cut and promoted back after the heal.
    assert ha["demotions"] > 0
    assert ha["promotions"] > 0

    # Deep into the cut, plain POCC has wedged closed-loop clients;
    # HA-POCC keeps (more of) them serving.
    assert pocc["wedged_during_cut"] > 0
    assert ha["wedged_during_cut"] < pocc["wedged_during_cut"]

    # After the heal and a drain, nobody stays wedged in either system.
    assert ha["wedged_after_drain"] == 0
    assert pocc["wedged_after_drain"] == 0

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"partition episode: cut DC0 at t={PARTITION_AT}s, "
        f"heal at t={PARTITION_AT + HEAL_AFTER}s",
        f"{'series':<9} {'total ops':>10} {'trough/s':>10} "
        f"{'cut mean/s':>11} {'wedged':>7} {'demote':>7} {'promote':>8}",
    ]
    for protocol in ("pocc", "ha_pocc"):
        r = results[protocol]
        lines.append(
            f"{protocol:<9} {r['total_ops']:>10} {r['trough_ops_s']:>10.0f} "
            f"{r['partition_mean_ops_s']:>11.0f} "
            f"{r['wedged_during_cut']:>7} "
            f"{r['demotions']:>7} {r['promotions']:>8}"
        )
    lines.append("")
    lines.append("throughput per 250 ms window (ops/s):")
    lines.append(f"{'t(s)':>6} {'pocc':>9} {'ha_pocc':>9}")
    for (t, pocc_rate), (_, ha_rate) in zip(pocc["rates"], ha["rates"]):
        lines.append(f"{t:>6.2f} {pocc_rate:>9.0f} {ha_rate:>9.0f}")
    (RESULTS_DIR / "ha_partition_episode.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
