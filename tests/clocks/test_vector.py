"""Tests (incl. property-based) for vector-clock algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.clocks.vector import (
    VectorClock,
    vec_aggregate_min,
    vec_covers,
    vec_leq,
    vec_max,
    vec_max_inplace,
    vec_min,
    vec_zero,
)

vectors = st.lists(st.integers(min_value=0, max_value=10**9),
                   min_size=3, max_size=3)


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------


def test_vec_zero():
    assert vec_zero(3) == [0, 0, 0]


def test_vec_max_and_min_basic():
    assert vec_max([1, 5, 3], [2, 4, 3]) == [2, 5, 3]
    assert vec_min([1, 5, 3], [2, 4, 3]) == [1, 4, 3]


def test_vec_max_inplace_mutates_first():
    a = [1, 5, 3]
    vec_max_inplace(a, [2, 4, 9])
    assert a == [2, 5, 9]


def test_vec_leq():
    assert vec_leq([1, 2, 3], [1, 2, 3])
    assert vec_leq([0, 2, 3], [1, 2, 3])
    assert not vec_leq([2, 2, 3], [1, 2, 3])


def test_vec_covers_skips_entry():
    vv = [10, 0, 10]
    deps = [5, 99, 5]
    assert vec_covers(vv, deps, skip=1)
    assert not vec_covers(vv, deps, skip=0)
    assert not vec_covers(vv, deps, skip=None)


def test_vec_covers_without_skip_equals_leq():
    assert vec_covers([3, 3, 3], [1, 2, 3], skip=None)
    assert not vec_covers([3, 3, 2], [1, 2, 3], skip=None)


def test_aggregate_min():
    assert vec_aggregate_min([[3, 5, 1], [2, 9, 4], [7, 6, 0]]) == [2, 5, 0]


def test_aggregate_min_single_vector():
    assert vec_aggregate_min([[1, 2, 3]]) == [1, 2, 3]


def test_aggregate_min_empty_rejected():
    with pytest.raises(ProtocolError):
        vec_aggregate_min([])


def test_strict_zip_rejects_length_mismatch():
    with pytest.raises(ValueError):
        vec_max([1, 2], [1, 2, 3])


@given(vectors, vectors)
def test_vec_max_is_upper_bound(a, b):
    merged = vec_max(a, b)
    assert vec_leq(a, merged) and vec_leq(b, merged)


@given(vectors, vectors)
def test_vec_min_is_lower_bound(a, b):
    met = vec_min(a, b)
    assert vec_leq(met, a) and vec_leq(met, b)


@given(vectors, vectors)
def test_vec_max_commutative(a, b):
    assert vec_max(a, b) == vec_max(b, a)


@given(vectors, vectors, vectors)
def test_vec_max_associative(a, b, c):
    assert vec_max(vec_max(a, b), c) == vec_max(a, vec_max(b, c))


@given(vectors)
def test_vec_max_idempotent(a):
    assert vec_max(a, a) == list(a)


@given(vectors, vectors)
def test_leq_antisymmetric(a, b):
    if vec_leq(a, b) and vec_leq(b, a):
        assert a == b


@given(vectors, vectors, vectors)
def test_leq_transitive(a, b, c):
    if vec_leq(a, b) and vec_leq(b, c):
        assert vec_leq(a, c)


@given(st.lists(vectors, min_size=1, max_size=6))
def test_aggregate_min_leq_every_input(vecs):
    low = vec_aggregate_min(vecs)
    for vec in vecs:
        assert vec_leq(low, vec)


# ----------------------------------------------------------------------
# VectorClock wrapper
# ----------------------------------------------------------------------


def test_vectorclock_zero_and_access():
    vc = VectorClock.zero(3)
    assert len(vc) == 3
    assert list(vc) == [0, 0, 0]
    assert vc[1] == 0


def test_vectorclock_rejects_negative():
    with pytest.raises(ProtocolError):
        VectorClock([1, -1, 0])


def test_vectorclock_merge_meet():
    a = VectorClock([1, 5, 3])
    b = VectorClock([2, 4, 3])
    assert a.merge(b) == VectorClock([2, 5, 3])
    assert a.meet(b) == VectorClock([1, 4, 3])


def test_vectorclock_partial_order():
    low = VectorClock([1, 1, 1])
    high = VectorClock([2, 2, 2])
    incomparable = VectorClock([0, 9, 0])
    assert low < high and high > low
    assert low <= low and not low < low
    assert incomparable.concurrent_with(low)
    assert not incomparable.concurrent_with(incomparable)


def test_vectorclock_advanced():
    vc = VectorClock([1, 2, 3])
    assert vc.advanced(0, 5) == VectorClock([5, 2, 3])
    assert vc.advanced(0, 1) is vc  # no-op returns self


def test_vectorclock_hash_eq():
    assert hash(VectorClock([1, 2, 3])) == hash(VectorClock([1, 2, 3]))
    assert VectorClock([1, 2, 3]) != VectorClock([1, 2, 4])
    assert VectorClock([1, 2, 3]) != "not-a-clock"


def test_vectorclock_length_mismatch_rejected():
    with pytest.raises(ProtocolError):
        VectorClock([1, 2]).merge(VectorClock([1, 2, 3]))


@given(vectors, vectors)
def test_wrapper_merge_matches_free_function(a, b):
    assert list(VectorClock(a).merge(VectorClock(b))) == vec_max(a, b)
