"""Hybrid logical clock (the Okapi* timestamp substrate).

POCC's PUT handler must wait until the server's physical clock exceeds every
timestamp in the client's dependency vector (Algorithm 2 line 7) so the new
update's timestamp dominates its dependencies.  A hybrid logical clock
(Kulkarni et al., "Logical Physical Clocks", OPODIS 2014) removes that wait
by letting the logical component jump ahead of the physical clock.  The
Okapi* protocol (:mod:`repro.protocols.okapi`) stamps every update with one
of these — its "writes never wait on clocks" claim — and the ablation
benches use it to quantify what the clock wait costs POCC."""

from __future__ import annotations

from repro.common.types import Micros
from repro.clocks.physical import PhysicalClock


class HybridLogicalClock:
    """An HLC layered over a (possibly skewed) physical clock.

    Timestamps are single integers: ``physical_us * 2**16 + logical``.
    This packing preserves ordering against plain physical timestamps
    scaled the same way and keeps the logical counter bounded (it resets
    whenever physical time advances).
    """

    LOGICAL_BITS = 16
    _LOGICAL_MASK = (1 << LOGICAL_BITS) - 1

    __slots__ = ("_physical", "_last_physical", "_logical")

    def __init__(self, physical: PhysicalClock):
        self._physical = physical
        self._last_physical: Micros = 0
        self._logical = 0

    def now(self) -> Micros:
        """Timestamp for a local event (send or local operation)."""
        physical = self._physical.peek_micros()
        if physical > self._last_physical:
            self._last_physical = physical
            self._logical = 0
        else:
            self._logical += 1
        return self._pack(self._last_physical, self._logical)

    def peek(self) -> Micros:
        """Current HLC value without bumping the logical counter.

        Mirrors :meth:`PhysicalClock.peek_micros`: what :meth:`now` would
        return is strictly greater, so ``peek() >= t`` implies the next
        stamp dominates ``t``.  Used by idleness checks (heartbeats) that
        must not consume timestamps.
        """
        physical = self._physical.peek_micros()
        if physical > self._last_physical:
            return self._pack(physical, 0)
        return self._pack(self._last_physical, self._logical)

    def update(self, remote_timestamp: Micros) -> Micros:
        """Merge a received timestamp; returns the new local timestamp."""
        remote_physical, remote_logical = self.unpack(remote_timestamp)
        physical = self._physical.peek_micros()
        if physical > self._last_physical and physical > remote_physical:
            self._last_physical = physical
            self._logical = 0
        elif remote_physical > self._last_physical:
            self._last_physical = remote_physical
            self._logical = remote_logical + 1
        elif remote_physical == self._last_physical:
            self._logical = max(self._logical, remote_logical) + 1
        else:
            self._logical += 1
        return self._pack(self._last_physical, self._logical)

    @classmethod
    def _pack(cls, physical: Micros, logical: int) -> Micros:
        return (physical << cls.LOGICAL_BITS) | (logical & cls._LOGICAL_MASK)

    @classmethod
    def unpack(cls, timestamp: Micros) -> tuple[Micros, int]:
        """Split a packed HLC timestamp into (physical_us, logical)."""
        return timestamp >> cls.LOGICAL_BITS, timestamp & cls._LOGICAL_MASK
