"""View records in the WAL: the committed cluster view survives crashes.

A committed view change (elastic membership's ``ViewCommit``) is logged
as a ``("view", epoch, members, vnodes)`` record before adoption, so a
SIGKILLed server rejoins the epoch it had committed rather than the
boot-time view — without this a recovered donor would re-claim keys it
already handed off.  Two subtleties these tests pin:

* recovery keeps the **newest epoch**, wherever it sits in the segment
  sequence;
* the snapshot format does not carry the view, so a snapshot roll (which
  deletes the covered segments — possibly holding the only view record)
  must re-log the newest view into the fresh segment first, including a
  view that was only ever *recovered*, never appended this run.
"""

from repro.common.config import PersistenceConfig
from repro.common.types import server_address
from repro.persistence.manager import (
    PartitionDurability,
    partition_dirname,
    recover_directory,
)
from repro.storage.store import PartitionStore
from repro.storage.version import Version


def _durability(tmp_path) -> PartitionDurability:
    durability = PartitionDurability(
        tmp_path, server_address(0, 0),
        PersistenceConfig(enabled=True, fsync="always"),
    )
    durability.recover()
    return durability


def _partition_dir(tmp_path):
    # The manager nests per-partition directories under its root.
    return tmp_path / partition_dirname(server_address(0, 0))


def _version(key="k00000001", ut=100):
    return Version(key=key, value=("c", 1), sr=0, ut=ut, dv=(0, 0))


def test_view_record_round_trips_through_recovery(tmp_path):
    durability = _durability(tmp_path)
    durability.append_version(_version())
    durability.append_view(3, (0, 1, 2), 64)
    durability.close()

    state = recover_directory(_partition_dir(tmp_path))
    assert state.had_state
    assert state.view_epoch == 3
    assert tuple(state.view_members) == (0, 1, 2)
    assert state.view_vnodes == 64
    # The version records around it are untouched by the non-version tag.
    assert state.wal_records == 1


def test_recovery_keeps_the_newest_epoch(tmp_path):
    durability = _durability(tmp_path)
    durability.append_view(1, (0, 1, 2, 3), 64)
    durability.append_view(2, (0, 1, 2), 64)
    durability.close()
    state = recover_directory(_partition_dir(tmp_path))
    assert state.view_epoch == 2
    assert tuple(state.view_members) == (0, 1, 2)


def test_fresh_directory_has_no_view(tmp_path):
    durability = _durability(tmp_path)
    durability.append_version(_version())
    durability.close()
    state = recover_directory(_partition_dir(tmp_path))
    # -1 is the "boot with the configured initial view" sentinel.
    assert state.view_epoch == -1
    assert state.view_members == ()


def test_snapshot_roll_re_logs_the_view(tmp_path):
    """The snapshot deletes the segments holding the only view record;
    the roll must write it into the fresh segment first."""
    durability = _durability(tmp_path)
    durability.append_view(5, (0, 2), 32)
    store = PartitionStore()
    store.insert(_version())
    durability.snapshot(store, vv=[0, 0], num_dcs=2)
    durability.close()

    state = recover_directory(_partition_dir(tmp_path))
    assert state.view_epoch == 5
    assert tuple(state.view_members) == (0, 2)
    assert state.view_vnodes == 32


def test_recovered_view_survives_a_snapshot_in_the_next_run(tmp_path):
    """A restarted server that never re-commits a view still re-logs the
    *recovered* one across its snapshot rolls — epoch knowledge must not
    decay run over run."""
    first = _durability(tmp_path)
    first.append_view(7, (1, 3), 64)
    first.close()

    second = PartitionDurability(
        tmp_path, server_address(0, 0),
        PersistenceConfig(enabled=True, fsync="always"),
    )
    recovered = second.recover()
    assert recovered.view_epoch == 7
    store = PartitionStore()
    store.insert(_version())
    second.snapshot(store, vv=[0, 0], num_dcs=2)  # deletes old segments
    second.close()

    state = recover_directory(_partition_dir(tmp_path))
    assert state.view_epoch == 7
    assert tuple(state.view_members) == (1, 3)
