"""OCC-scalar — optimistic causal consistency with O(1) metadata.

Section III-A of the paper notes that OCC "can be implemented with any
dependency tracking mechanism that has been proposed in literature",
naming scalar physical clocks (GentleRain [13]) alongside the vector
clocks POCC uses.  This module builds that variant: optimistic visibility
(reads always return the chain head) paired with GentleRain-sized client
metadata — completing the 2x2 design matrix the benches compare:

=============  =====================  =========================
metadata       pessimistic            optimistic
=============  =====================  =========================
scalar, O(1)   GentleRain*            **OCC-scalar** (this file)
vector, O(M)   Cure*                  POCC
=============  =====================  =========================

The client carries two scalars:

* ``dt`` — the update time of the newest item in its causal past
  (reads *and* writes, any origin);
* ``rdt`` — the update time of the newest *remote-origin* item in its
  causal past (direct or transitive).

Correctness mirrors POCC's argument with a coarser cut: every remote item
the client may depend on has a timestamp at most ``rdt``, so once each
remote entry of a server's version vector passes ``rdt`` no dependency
can still be missing (updates and heartbeats arrive in timestamp order).
Local-origin dependencies are trivially present and never wait, which is
why writes (always local) leave ``rdt`` unchanged and a read-write session
does not stall on its own updates.

The documented cost of the single scalar is *false blocking across DCs*:
a dependency on a fresh item from DC *i* makes a GET wait until **every**
remote entry of the version vector passes it, so the slowest uninvolved
DC gates the read.  POCC's vector waits only on entry *i*.  The
``bench_ablation_metadata`` bench quantifies exactly this trade-off.

Transactions take their snapshot at ``max(dt, min(VV))`` — the newest
timestamp below which the coordinator has received *everything* — which
is fresher than GentleRain*'s ``max(dt, GST)`` by the stabilization lag,
without running any stabilization protocol at all.

Wire mapping (byte accounting reflects the O(1) metadata automatically):
``GetReq.rdv == [rdt]``, ``GetReply.dv == (rdep,)`` where ``rdep`` is the
version's remote-dependency time for readers of this DC,
``PutReq.dv == [dt, rdt]``, ``RoTxReq.rdv == [dt]`` and
``SliceReq.tv == [snapshot_time]``.  Internally a created version stores
the writer's remote-dependency time replicated across an M-entry vector
so the shared storage machinery applies unchanged; only the replication
message over-counts metadata by ``8 * (M - 1)`` bytes, which
``benchmarks/bench_ablation_overhead.py`` notes when reporting.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.types import Micros, OpType
from repro.metrics.collectors import (
    BLOCK_GET_VV,
    BLOCK_PUT_CLOCK,
    BLOCK_PUT_DEPS,
    BLOCK_SLICE_VV,
)
from repro.protocols import messages as m
from repro.protocols.base import CausalClient, CausalServer
from repro.storage.version import Version


class OccScalarServer(CausalServer):
    """Optimistic server gated by a single remote-dependency scalar."""

    # ------------------------------------------------------------------
    # Scalar waiting condition
    # ------------------------------------------------------------------
    def _remote_horizon(self) -> Micros:
        """The newest timestamp below which every remote DC's updates have
        been received: ``min over i != m of VV[i]``."""
        return min(ts for i, ts in enumerate(self.vv) if i != self.m)

    def _remote_dependency_time(self, version: Version) -> Micros:
        """``rdep``: the scalar a reader of this DC must carry after
        observing ``version`` — its own timestamp if it is remote-origin,
        joined with its stored (scalar) dependency time."""
        rdep: Micros = version.dv[0] if version.dv else 0
        if version.sr != self.m and version.ut > rdep:
            rdep = version.ut
        return rdep

    # ------------------------------------------------------------------
    # GET: wait for the remote horizon, return the chain head
    # ------------------------------------------------------------------
    def handle_get(self, msg: m.GetReq) -> None:
        rdt: Micros = msg.rdv[0] if msg.rdv else 0
        self.block_or_run(
            BLOCK_GET_VV,
            lambda: self._remote_horizon() >= rdt,
            lambda: self._serve_get(msg),
            payload=msg,
        )

    def _serve_get(self, msg: m.GetReq) -> None:
        version = self.store.freshest(msg.key)
        if version is None:
            self.send(msg.client, self.nil_reply(msg.key, msg.op_id))
            return
        # Optimistic reads always return the chain head: never "old".
        self.metrics.record_get_staleness(0, 0)
        self.send(msg.client, self._reply_for(version, msg.op_id))

    def _reply_for(self, version: Version, op_id: int) -> m.GetReply:
        return m.GetReply(
            key=version.key,
            value=version.value,
            ut=version.ut,
            dv=(self._remote_dependency_time(version),),
            sr=version.sr,
            op_id=op_id,
        )

    def nil_reply(self, key: str, op_id: int) -> m.GetReply:
        return m.GetReply(key=key, value=None, ut=0, dv=(0,), sr=self.m,
                          op_id=op_id)

    # ------------------------------------------------------------------
    # PUT: optional remote-dependency wait, then the clock discipline
    # ------------------------------------------------------------------
    def handle_put(self, msg: m.PutReq) -> None:
        if self._protocol.put_dependency_wait:
            rdt: Micros = msg.dv[1] if len(msg.dv) > 1 else 0
            self.block_or_run(
                BLOCK_PUT_DEPS,
                lambda: self._remote_horizon() >= rdt,
                lambda: self._put_wait_clock(msg),
                payload=msg,
            )
        else:
            self._put_wait_clock(msg)

    def _put_wait_clock(self, msg: m.PutReq) -> None:
        # The new version's timestamp must dominate the client's whole
        # causal past, local items included (Proposition 2).
        dt: Micros = msg.dv[0] if msg.dv else 0
        self.metrics.record_block_attempt(BLOCK_PUT_CLOCK)
        if self.clock.peek_micros() > dt:
            self._apply_put(msg)
            return
        blocked_at = self.rt.now

        def resume() -> None:
            self.metrics.record_block_started(BLOCK_PUT_CLOCK, blocked_at,
                                              self.rt.now - blocked_at)
            self.submit_local(self._service.resume_s, self._apply_put, msg)

        self.wait_for_clock(dt, resume)

    def _apply_put(self, msg: m.PutReq) -> None:
        # The version remembers only the writer's *remote* dependency time.
        # The writer's local dependencies need no record: the clock
        # discipline guarantees ut > dt, so at any other DC they are
        # dominated by the version's own timestamp, and at this DC they
        # are trivially present.  (Storing the full dt would make same-DC
        # readers inherit phantom remote dependencies and stall GETs that
        # have nothing to wait for.)
        rdt: Micros = msg.dv[1] if len(msg.dv) > 1 else 0
        version = self.create_version(msg.key, msg.value,
                                      (rdt,) * self.topology.num_dcs)
        self.send(msg.client, m.PutReply(ut=version.ut, op_id=msg.op_id))

    # ------------------------------------------------------------------
    # RO-TX: scalar snapshot at max(dt, min(VV))
    # ------------------------------------------------------------------
    def handle_ro_tx(self, msg: m.RoTxReq) -> None:
        dt: Micros = msg.rdv[0] if msg.rdv else 0
        snapshot = max(dt, min(self.vv))
        self.coordinate_tx(msg, [snapshot])

    def handle_slice(self, msg: m.SliceReq) -> None:
        snapshot: Micros = msg.tv[0]
        self.block_or_run(
            BLOCK_SLICE_VV,
            # Every version with ut <= snapshot — from any DC — must be
            # present for the cut to be causally closed.
            lambda: self._remote_horizon() >= snapshot,
            lambda: self._serve_slice(msg),
            payload=msg,
        )

    def _serve_slice(self, msg: m.SliceReq) -> None:
        snapshot: Micros = msg.tv[0]
        replies = []
        scanned_total = 0
        for key in msg.keys:
            chain = self.store.chain(key)
            if chain is None:
                replies.append(self.nil_reply(key, 0))
                continue
            version, scanned = chain.find_freshest(
                lambda v: v.ut <= snapshot
            )
            scanned_total += scanned
            if version is None:
                version = next(reversed(list(chain)))
            fresher = chain.versions_newer_than(version)
            # Everything behind the snapshot is already merged under the
            # optimistic protocol: old == unmerged, as for POCC.
            self.metrics.record_tx_staleness(fresher, fresher)
            replies.append(self._reply_for(version, 0))
        response = m.SliceResp(versions=replies, tx_id=msg.tx_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned_total
        self.submit_local(scan_cost, self.send_slice_resp, msg, response)

    # ------------------------------------------------------------------
    # Garbage collection: scalar horizon, timestamp-based retention
    # ------------------------------------------------------------------
    # Snapshots filter by *timestamp* (ut <= st), so retention must too:
    # the DC-wide horizon H is the minimum over every node's min(VV)
    # capped by its active transaction snapshots, and each chain keeps its
    # newest version with ut <= H plus everything newer.  Any live or
    # future snapshot satisfies st >= H (VV entries are monotone), so the
    # version it returns is always retained.  The length-1 report vectors
    # keep the GC byte accounting honest for the scalar protocol.

    def _gc_report_vector(self) -> list[Micros]:
        horizon = min(self.vv)
        for state in self._active_tx.values():
            tv = state.get("tv")
            if tv and tv[0] < horizon:
                horizon = tv[0]
        return [horizon]

    def _apply_gc(self, gv: list[Micros]) -> None:
        horizon: Micros = gv[0]
        self.store.collect_by(lambda v: v.ut <= horizon, [horizon])


class OccScalarClient(CausalClient):
    """Client carrying two scalars: ``dt`` and ``rdt`` (see module doc)."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        #: Newest update time in the causal past (any origin).
        self.dt: Micros = 0
        #: Newest *remote-origin* update time in the causal past.
        self.rdt: Micros = 0

    def read_dependency_vector(self) -> list[Micros]:
        return [self.rdt]

    # ------------------------------------------------------------------
    # Operations (scalar wire format)
    # ------------------------------------------------------------------
    def get(self, key: str, callback: Callable[[m.GetReply], None]) -> None:
        op_id = self._register(OpType.GET, callback)
        self.send(self._server_for(key),
                  m.GetReq(key=key, rdv=[self.rdt], client=self.address,
                           op_id=op_id))

    def put(self, key: str, value: Any,
            callback: Callable[[m.PutReply], None]) -> None:
        op_id = self._register(OpType.PUT, callback)
        self.send(self._server_for(key),
                  m.PutReq(key=key, value=value, dv=[self.dt, self.rdt],
                           client=self.address, op_id=op_id))

    def ro_tx(self, keys, callback: Callable[[m.RoTxReply], None]) -> None:
        op_id = self._register(OpType.RO_TX, callback)
        coordinator = self.topology.server(self.m, self.address.partition)
        self.send(coordinator,
                  m.RoTxReq(keys=tuple(keys), rdv=[self.dt],
                            client=self.address, op_id=op_id))

    # ------------------------------------------------------------------
    # Metadata maintenance
    # ------------------------------------------------------------------
    def absorb_read(self, reply: m.GetReply) -> None:
        rdep: Micros = reply.dv[0] if reply.dv else 0
        if rdep > self.rdt:
            self.rdt = rdep
        self.dt = max(self.dt, reply.ut, rdep)

    def _complete_put(self, reply: m.PutReply) -> None:
        op_type, started, callback = self._pending.pop(reply.op_id)
        # A write is local-origin: it raises dt but never rdt.
        if reply.ut > self.dt:
            self.dt = reply.ut
        self._finish(op_type, started)
        callback(reply)

    def reset_session(self) -> None:
        super().reset_session()
        self.dt = 0
        self.rdt = 0
