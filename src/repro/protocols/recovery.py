"""Recovery from a full data-center failure (Section III-B).

A DC that fails (or a partition that never heals) leaves the optimistic
system with **lost updates**: items the failed DC created that reached
*some* healthy DCs but not others, and items created anywhere that
causally depend on them.  Because OCC exposed those items before they
were stable, healthy DCs may have served reads — and accepted writes —
against data that part of the system will never receive.  The paper's
recovery mechanism is to *discard* such items:

    "A possible mechanism to recover from this situation is to discard
    items that depend on a lost update and that have been created after
    the failure of DC'. [...] In OCC, instead, also updates from healthy
    DCs might get discarded."

:func:`recover_from_dc_failure` implements exactly that, operating on a
quiesced cluster (the failed DC cut off by the fault injector):

1. **Cut computation** — for every partition *n*, the survivable prefix
   of the failed DC's updates is ``cut[n] = min over healthy DCs j of
   VV^j_n[failed]``: everything at or below the cut reached *every*
   healthy replica and is kept; anything above it is a lost update.
2. **Discard** — each healthy server purges (a) versions originated at
   the failed DC beyond the cut and (b) versions — from *any* origin —
   whose dependency vector references the failed DC beyond the cut
   (transitive dependencies are covered because clients fold dependency
   vectors entry-wise into everything they subsequently write).
3. **Session resets** — clients whose dependency vectors reference
   discarded items re-initialize their sessions (the stickiness argument
   of Section III-B: causal sessions are built to survive resets).
4. **Blocked-operation aborts** — server-side waiters can reference
   discarded dependencies and would otherwise hang forever; they are
   dropped and their sessions closed (the HA client demotes and retries;
   see :mod:`repro.protocols.ha`).

After recovery the healthy DCs satisfy LWW convergence again
(:func:`repro.verification.convergence.check_convergence_among`), and the
system can resume optimistic operation among the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.topology import Topology
from repro.common.errors import SimulationError
from repro.common.types import Micros
from repro.protocols import messages as m
from repro.protocols.base import CausalClient, CausalServer
from repro.storage.version import Version


@dataclass(slots=True)
class RecoveryReport:
    """What a DC-failure recovery pass discarded and reset."""

    failed_dc: int
    healthy_dcs: tuple[int, ...]
    #: Per-partition survivable prefix of the failed DC's updates.
    cuts: dict[int, Micros]
    #: Lost updates: failed-DC versions beyond the cut, per origin DC of
    #: the server that held them (they were replicated copies).
    lost_updates_discarded: int = 0
    #: Dependent items discarded, keyed by the DC that *created* them —
    #: non-zero healthy-DC entries demonstrate the paper's point that OCC
    #: recovery can lose updates originated at healthy DCs.
    dependents_discarded_by_origin: dict[int, int] = field(
        default_factory=dict
    )
    clients_reset: int = 0
    operations_aborted: int = 0
    #: Keys re-synchronized between survivors after the discard pass.
    replicas_repaired: int = 0

    @property
    def total_discarded(self) -> int:
        return self.lost_updates_discarded + sum(
            self.dependents_discarded_by_origin.values()
        )

    def summary_text(self) -> str:
        by_origin = ", ".join(
            f"dc{dc}: {count}"
            for dc, count in sorted(self.dependents_discarded_by_origin.items())
        ) or "none"
        return (
            f"recovery from DC{self.failed_dc} failure: "
            f"{self.lost_updates_discarded} lost updates discarded, "
            f"dependents discarded by origin: {by_origin}; "
            f"{self.clients_reset} sessions reset, "
            f"{self.operations_aborted} blocked operations aborted"
        )


def _dep_on(version: Version, dc: int) -> Micros:
    """The version's dependency-vector entry for ``dc`` (0 if the
    protocol stores no per-DC cut, e.g. scalar metadata)."""
    return version.dv[dc] if dc < len(version.dv) else 0


def recover_from_dc_failure(
    servers: dict,
    topology: Topology,
    failed_dc: int,
    clients: Sequence[CausalClient] = (),
    abort_blocked: bool = True,
) -> RecoveryReport:
    """Discard lost updates and their dependents after ``failed_dc`` dies.

    ``servers`` maps addresses to servers (as built by the harness); the
    failed DC's own servers are left untouched (they are unreachable).
    Pass the cluster's clients so sessions that depend on discarded items
    are reset; healthy-DC clients only.
    """
    if not 0 <= failed_dc < topology.num_dcs:
        raise SimulationError(f"no such DC: {failed_dc}")
    healthy = tuple(
        dc for dc in range(topology.num_dcs) if dc != failed_dc
    )

    # Phase 1: the survivable cut, per partition.
    cuts: dict[int, Micros] = {}
    for partition in range(topology.num_partitions):
        cuts[partition] = min(
            servers[topology.server(dc, partition)].vv[failed_dc]
            for dc in healthy
        )
    report = RecoveryReport(failed_dc=failed_dc, healthy_dcs=healthy,
                            cuts=cuts)

    # Phase 2: discard lost updates and everything depending on them.
    for partition, cut in cuts.items():
        for dc in healthy:
            server: CausalServer = servers[topology.server(dc, partition)]

            def doomed(version: Version) -> bool:
                if version.sr == failed_dc and version.ut > cut:
                    return True
                return _dep_on(version, failed_dc) > cut

            for version in server.store.purge(doomed):
                if version.sr == failed_dc:
                    report.lost_updates_discarded += 1
                else:
                    by_origin = report.dependents_discarded_by_origin
                    by_origin[version.sr] = by_origin.get(version.sr, 0) + 1
            # Freeze the failed entry at the cut: nothing beyond it will
            # ever be (re)delivered, and the discarded state must not be
            # considered "received".
            if server.vv[failed_dc] > cut:
                server.vv[failed_dc] = cut
            if abort_blocked:
                report.operations_aborted += _abort_blocked(server)

    # Phase 2b: anti-entropy among survivors.  Discarding can expose
    # holes — a replica whose GC had already dropped the versions *under*
    # a now-discarded item ends up with nothing, while its peers still
    # hold the survivable prefix.  Recovery re-syncs each key to the LWW
    # winner among the healthy replicas, exactly as a production recovery
    # procedure would.
    report.replicas_repaired = _anti_entropy(servers, topology, healthy)

    # Phase 3: reset sessions that depend on discarded items.
    min_cut = min(cuts.values(), default=0)
    for client in clients:
        if client.address.dc == failed_dc:
            continue
        deps_on_failed = max(client.dv[failed_dc], client.rdv[failed_dc])
        if deps_on_failed > min_cut:
            client.reset_session()
            report.clients_reset += 1

    return report


def _anti_entropy(servers: dict, topology: Topology,
                  healthy: Sequence[int]) -> int:
    """Copy each key's LWW winner to survivors that lack it.

    Version vectors are deliberately *not* advanced: the sweep copies
    single winners, not the full prefix a VV entry asserts, and a lower
    VV is merely conservative (it can cause waits, never violations).
    """
    repaired = 0
    for partition in range(topology.num_partitions):
        replicas: list[CausalServer] = [
            servers[topology.server(dc, partition)] for dc in healthy
        ]
        keys = set()
        for replica in replicas:
            keys.update(replica.store.keys())
        for key in keys:
            heads = [replica.store.freshest(key) for replica in replicas]
            present = [h for h in heads if h is not None]
            if not present:
                continue
            winner = max(present, key=lambda v: v.order_key)
            wid = winner.identity()
            for replica, head in zip(replicas, heads):
                if head is not None and head.identity() == wid:
                    continue
                copy = getattr(winner, "local_copy", None)
                replica.store.insert(copy(visible=True) if copy else winner)
                repaired += 1
    return repaired


def _abort_blocked(server: CausalServer) -> int:
    """Drop every parked operation and close its session.

    After the purge a waiter's predicate may be unsatisfiable forever
    (its dependency was discarded).  Telling satisfiable and doomed
    waiters apart would require predicate introspection; recovery closes
    them all — re-issued operations against the recovered state succeed
    immediately, and the HA client handles ``SessionClosed`` natively.
    """
    aborted = 0
    for waiter in server.waiters.expired(0.0):
        server.waiters.drop(waiter)
        request = waiter.payload
        if isinstance(request, (m.GetReq, m.PutReq)):
            server.send(request.client, m.SessionClosed(
                op_id=request.op_id, reason="dc failure recovery"))
            aborted += 1
        elif isinstance(request, m.SliceReq):
            server.send_slice_resp(request, m.SliceResp(
                versions=[], tx_id=request.tx_id, aborted=True))
            aborted += 1
    return aborted


def lost_update_exposure(
    servers: dict,
    topology: Topology,
    failed_dc: int,
) -> dict[int, int]:
    """How many not-yet-survivable failed-DC versions each healthy DC
    currently holds (a dry-run census of what recovery would discard).

    Useful for monitoring: a large exposure means a failure of
    ``failed_dc`` right now would force a large discard.
    """
    healthy = [dc for dc in range(topology.num_dcs) if dc != failed_dc]
    exposure = {dc: 0 for dc in healthy}
    for partition in range(topology.num_partitions):
        cut = min(
            servers[topology.server(dc, partition)].vv[failed_dc]
            for dc in healthy
        )
        for dc in healthy:
            server = servers[topology.server(dc, partition)]
            for key in server.store.keys():
                chain = server.store.chain(key)
                exposure[dc] += chain.count_matching(
                    lambda v: v.sr == failed_dc and v.ut > cut
                )
    return exposure
