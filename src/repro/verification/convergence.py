"""Replica convergence checking.

Section II-B: convergent conflict handling must drive all replicas of a key
to the same value.  After a run quiesces (drivers stopped, replication
drained), every DC's version chain for a key must agree on the
last-writer-wins winner.  ``check_convergence`` compares chain heads across
all replicas of every partition and reports disagreements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.base import CausalServer


@dataclass(frozen=True, slots=True)
class Divergence:
    """Replicas disagree on the winning version of a key."""

    key: str
    partition: int
    heads: tuple[tuple[int, tuple], ...]  # (dc, version identity)

    def describe(self) -> str:
        heads = ", ".join(f"dc{dc}={vid}" for dc, vid in self.heads)
        return f"key {self.key} (partition {self.partition}): {heads}"


def check_convergence(
    servers: dict, num_dcs: int, num_partitions: int
) -> list[Divergence]:
    """Compare LWW winners across DCs for every key of every partition.

    ``servers`` maps :class:`repro.common.types.Address` to server objects
    (as built by the harness).  Returns every key whose replicas disagree.
    """
    return check_convergence_among(servers, range(num_dcs), num_partitions)


def check_convergence_among(
    servers: dict, dcs, num_partitions: int
) -> list[Divergence]:
    """Convergence over a subset of DCs — the check that matters after a
    full DC failure, when only the *healthy* replicas must agree."""
    from repro.common.types import server_address

    dcs = list(dcs)
    divergences: list[Divergence] = []
    for partition in range(num_partitions):
        replicas: list[tuple[int, CausalServer]] = [
            (dc, servers[server_address(dc, partition)])
            for dc in dcs
        ]
        _, first = replicas[0]
        for key in first.store.keys():
            heads = []
            for dc, server in replicas:
                head = server.store.freshest(key)
                heads.append((dc, head.identity() if head else None))
            identities = {identity for _, identity in heads}
            if len(identities) > 1:
                divergences.append(Divergence(
                    key=key, partition=partition, heads=tuple(heads),
                ))
    return divergences
