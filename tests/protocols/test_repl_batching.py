"""Protocol-level replication batching: equivalence, safety, amortization.

Three layers of defense around the new first-class policy:

* **Equivalence** — ``max_versions=1`` must reproduce the batching-off
  engine *byte-for-byte* (every flush carries one version and the ship
  path degenerates to the plain per-write ``Replicate``), which also
  proves the default-off configuration cannot perturb existing reports.
* **Safety** — batched runs across every causal protocol pass the
  independent causal checker and the convergence audit, including under
  randomized partition/heal schedules (held batches flush in FIFO order
  on heal, and the flush-clock piggyback must never advance a remote VV
  entry past an undelivered version).
* **Amortization** — batching actually collapses inter-DC replicate
  traffic (messages scale with flushes, not writes) and Okapi*'s
  aggregators piggyback their DST on batches instead of extra gossip.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, replace

import pytest

import helpers
from repro.common.config import (
    ClockConfig,
    ClusterConfig,
    ExperimentConfig,
    ProtocolConfig,
    ReplicationBatchConfig,
    WorkloadConfig,
)
from repro.harness.builders import build_cluster
from repro.harness.experiment import run_experiment
from repro.protocols import messages as m
from repro.protocols.batching import ReplicationBatcher
from repro.protocols.registry import PROTOCOLS

CAUSAL_PROTOCOLS = tuple(name for name in PROTOCOLS if name != "eventual")

BATCHED = ReplicationBatchConfig(enabled=True, max_versions=8,
                                 max_bytes=65536, flush_ms=5.0)


def _config(
    protocol: str,
    repl_batch: ReplicationBatchConfig | None = None,
    seed: int = 11,
    duration_s: float = 1.2,
    workload: WorkloadConfig | None = None,
) -> ExperimentConfig:
    cluster = ClusterConfig(
        num_dcs=3, num_partitions=2, keys_per_partition=40,
        protocol=protocol, clocks=ClockConfig(max_offset_us=200),
        protocol_config=ProtocolConfig(block_timeout_s=0.08),
    )
    if repl_batch is not None:
        cluster = replace(cluster, repl_batch=repl_batch)
    if workload is None:
        if protocol == "cops":
            workload = WorkloadConfig(kind="get_put", gets_per_put=2,
                                      clients_per_partition=2,
                                      think_time_s=0.004)
        else:
            workload = WorkloadConfig(kind="mixed", read_ratio=0.7,
                                      tx_ratio=0.1, tx_partitions=2,
                                      clients_per_partition=2,
                                      think_time_s=0.004)
    return ExperimentConfig(
        cluster=cluster, workload=workload, warmup_s=0.2,
        duration_s=duration_s, seed=seed, verify=True,
        name=f"repl-batch-{protocol}",
    )


def _report_bytes(result) -> str:
    return json.dumps(asdict(result), sort_keys=True)


# ----------------------------------------------------------------------
# Equivalence: max_versions=1 == batching disabled, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_batch_of_one_is_byte_identical_to_disabled(protocol):
    """The degenerate batch ships the plain per-write Replicate, so the
    whole event history — and therefore the report — is unchanged."""
    baseline = run_experiment(_config(protocol, repl_batch=None))
    degenerate = run_experiment(_config(
        protocol,
        repl_batch=ReplicationBatchConfig(enabled=True, max_versions=1),
    ))
    assert _report_bytes(baseline) == _report_bytes(degenerate)


def test_disabled_config_creates_no_batcher():
    built = helpers.make_cluster(protocol="pocc")
    for server in built.servers.values():
        assert server._batcher is None


# ----------------------------------------------------------------------
# Safety: batched runs stay causal and convergent
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", CAUSAL_PROTOCOLS)
def test_batched_runs_pass_the_causal_checker(protocol):
    built = build_cluster(_config(protocol, repl_batch=BATCHED))
    result = run_experiment(built.config, built=built)
    assert result.verification["violations"] == 0, (
        "; ".join(v.describe() for v in built.checker.violations[:5])
    )
    assert result.verification["reads_checked"] > 100
    assert result.divergences == 0
    # Non-vacuity: real multi-version batches actually went out.
    batchers = [s._batcher for s in built.servers.values()]
    assert all(b is not None for b in batchers)
    flushed = sum(b.batches_flushed for b in batchers)
    shipped = sum(b.versions_flushed for b in batchers)
    assert flushed > 0
    assert shipped > flushed, "no flush ever carried more than one version"


@pytest.mark.parametrize("protocol", ("pocc", "cure", "okapi", "cops"))
@pytest.mark.parametrize("seed", (101, 303))
def test_batched_runs_survive_partition_schedules(protocol, seed):
    """The fuzz suite's adversarial shape, batching on: partition
    episodes hold whole batches back and heal-time flushes replay them
    in FIFO order — the checker and the convergence audit must not
    notice the difference."""
    config = _config(protocol, repl_batch=BATCHED, seed=seed)
    built = build_cluster(config)
    rng = random.Random(seed * 31 + 7)
    shapes = (([0], [1]), ([1], [2]), ([0], [2]), ([0], [1, 2]))
    for _ in range(rng.randint(1, 2)):
        start = rng.uniform(0.25, 0.7)
        duration = rng.uniform(0.1, 0.3)
        group_a, group_b = rng.choice(shapes)
        built.faults.schedule_partition(start, group_a, group_b,
                                        heal_after=duration)
    result = run_experiment(config, built=built)
    assert built.faults.partitions_started >= 1
    assert not built.faults.active
    assert result.verification["violations"] == 0, (
        f"{protocol} seed {seed}: "
        + "; ".join(v.describe() for v in built.checker.violations[:5])
    )
    assert result.divergences == 0, f"{protocol} seed {seed} diverged"


def test_batched_run_is_deterministic_per_seed():
    first = run_experiment(_config("pocc", repl_batch=BATCHED))
    second = run_experiment(_config("pocc", repl_batch=BATCHED))
    assert _report_bytes(first) == _report_bytes(second)


# ----------------------------------------------------------------------
# Amortization: messages scale with flushes, not writes
# ----------------------------------------------------------------------
def _write_heavy(protocol: str, repl_batch, seed: int = 17):
    config = _config(
        protocol, repl_batch=repl_batch, seed=seed,
        workload=WorkloadConfig(kind="get_put", gets_per_put=1,
                                clients_per_partition=4,
                                think_time_s=0.0),
    )
    built = build_cluster(config)
    result = run_experiment(config, built=built)
    return built, result


def test_batching_collapses_inter_dc_replicate_messages():
    batch = ReplicationBatchConfig(enabled=True, max_versions=64,
                                   max_bytes=1 << 20, flush_ms=20.0)
    built_off, result_off = _write_heavy("pocc", None)
    built_on, result_on = _write_heavy("pocc", batch)
    off_types = built_off.network.stats.inter_dc_by_type
    on_types = built_on.network.stats.inter_dc_by_type
    singles = off_types.get("Replicate", 0)
    batches = (on_types.get("ReplicateBatch", 0)
               + on_types.get("Replicate", 0))
    assert singles > 1000, "write-heavy run produced too few replications"
    assert batches > 0
    assert singles / batches >= 8, (
        f"batch=64/20ms should cut replicate messages >= 8x, got "
        f"{singles}/{batches} = {singles / batches:.1f}x"
    )
    # Same work was replicated either way (both runs pass the checker).
    assert result_off.verification["violations"] == 0
    assert result_on.verification["violations"] == 0
    # Fewer messages also means fewer inter-DC bytes (shared headers).
    assert (built_on.network.stats.inter_dc_bytes()
            < built_off.network.stats.inter_dc_bytes())


def test_batching_suppresses_idle_heartbeats_while_traffic_flows():
    """Each flush stamps the clock into VV[m], so the write-idle check
    keeps the explicit heartbeat silent while batches flow."""
    batch = ReplicationBatchConfig(enabled=True, max_versions=64,
                                   max_bytes=1 << 20, flush_ms=20.0)
    built_off, _ = _write_heavy("pocc", None)
    built_on, _ = _write_heavy("pocc", batch)
    off_hb = built_off.network.stats.inter_dc_by_type.get("Heartbeat", 0)
    on_hb = built_on.network.stats.inter_dc_by_type.get("Heartbeat", 0)
    assert on_hb <= off_hb


def test_okapi_piggybacks_dst_on_batches():
    """Aggregator batches carry the DST, so explicit UstGossip traffic
    drops while the UST keeps advancing (visibility samples drain)."""
    batch = ReplicationBatchConfig(enabled=True, max_versions=64,
                                   max_bytes=1 << 20, flush_ms=10.0)
    built_off, result_off = _write_heavy("okapi", None)
    built_on, result_on = _write_heavy("okapi", batch)
    off_gossip = built_off.network.stats.inter_dc_by_type.get("UstGossip", 0)
    on_gossip = built_on.network.stats.inter_dc_by_type.get("UstGossip", 0)
    assert off_gossip > 0
    assert on_gossip < off_gossip, (
        f"piggybacked DST should suppress explicit gossip: "
        f"{on_gossip} vs {off_gossip}"
    )
    # The UST still advances: remote versions became visible and their
    # latency samples drained (count > 0 requires ust_advanced firing).
    assert result_on.visibility_lag["count"] > 0
    assert result_on.verification["violations"] == 0


# ----------------------------------------------------------------------
# The batcher itself (pure policy over a fake runtime)
# ----------------------------------------------------------------------
class _FakeTimer:
    def __init__(self):
        self.cancelled = False

    def cancel(self) -> bool:
        self.cancelled = True
        return True

    @property
    def active(self) -> bool:
        return not self.cancelled


class _FakeRuntime:
    def __init__(self):
        self.timers: list[tuple[float, object]] = []

    def schedule_flush(self, delay, fn, *args):
        timer = _FakeTimer()
        self.timers.append((delay, fn, timer))
        return timer


def _version(key="k", ut=1):
    from repro.storage.version import Version
    return Version(key=key, value=("c", 1), sr=0, ut=ut, dv=(0, 0))


def _batcher(max_versions=4, max_bytes=1 << 20, flush_ms=5.0):
    shipped: list[list] = []
    rt = _FakeRuntime()
    batcher = ReplicationBatcher(
        rt,
        ReplicationBatchConfig(enabled=True, max_versions=max_versions,
                               max_bytes=max_bytes, flush_ms=flush_ms),
        shipped.append,
    )
    return rt, batcher, shipped


def test_batcher_flushes_on_version_count():
    rt, batcher, shipped = _batcher(max_versions=3)
    for i in range(3):
        batcher.add(_version(ut=i + 1))
    assert [len(batch) for batch in shipped] == [3]
    assert batcher.pending == 0
    assert batcher.batches_flushed == 1
    assert batcher.versions_flushed == 3


def test_batcher_flushes_on_byte_threshold():
    from repro.protocols.messages import version_bytes
    size = version_bytes(_version())
    rt, batcher, shipped = _batcher(max_versions=1000,
                                    max_bytes=2 * size)
    batcher.add(_version(ut=1))
    assert not shipped
    assert batcher.pending_bytes == size
    batcher.add(_version(ut=2))
    assert [len(batch) for batch in shipped] == [2]
    assert batcher.pending_bytes == 0


def test_batcher_arms_one_deadline_and_cancels_it_on_size_flush():
    rt, batcher, shipped = _batcher(max_versions=2, flush_ms=7.0)
    batcher.add(_version(ut=1))
    assert len(rt.timers) == 1
    delay, _, timer = rt.timers[0]
    assert delay == pytest.approx(0.007)
    batcher.add(_version(ut=2))  # size flush beats the deadline
    assert shipped and timer.cancelled


def test_batcher_deadline_flushes_whatever_is_buffered():
    rt, batcher, shipped = _batcher(max_versions=100)
    batcher.add(_version(ut=1))
    batcher.add(_version(ut=2))
    _, deadline, _ = rt.timers[0]
    deadline()
    assert [len(batch) for batch in shipped] == [2]
    # The next add arms a fresh deadline (the old one is spent).
    batcher.add(_version(ut=3))
    assert len(rt.timers) == 2


def test_batcher_flush_on_empty_buffer_is_a_noop():
    rt, batcher, shipped = _batcher()
    batcher.flush()
    assert not shipped
    assert batcher.batches_flushed == 0


# ----------------------------------------------------------------------
# The flush-clock / heartbeat interplay at the protocol level
# ----------------------------------------------------------------------
def _batched_cluster(protocol="pocc", max_versions=64, flush_ms=5.0):
    return helpers.make_cluster(
        protocol=protocol, verify=True,
        cluster_overrides={
            "repl_batch": ReplicationBatchConfig(
                enabled=True, max_versions=max_versions,
                max_bytes=1 << 20, flush_ms=flush_ms,
            ),
        },
    )


def test_batch_flush_advances_remote_vv_to_the_flush_clock():
    built = _batched_cluster()
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0, rank=0)
    key_b = helpers.key_on_partition(built, 0, rank=1)
    first = helpers.put(built, client, key_a, ("c", 1))
    second = helpers.put(built, client, key_b, ("c", 2))
    helpers.settle(built, 0.5)
    newest = max(first.ut, second.ut)
    for dc in range(1, built.topology.num_dcs):
        replica = built.servers[built.topology.server(dc, 0)]
        # The replica holds both versions and its VV entry for the
        # source covers the newest stamp — the flush clock is never
        # behind the versions it shipped.
        keys = {v.key for v in replica.store.all_versions() if v.ut > 0}
        assert {key_a, key_b} <= keys
        assert replica.vv[0] >= newest


def test_concurrent_puts_ride_one_batch():
    built = helpers.make_cluster(
        protocol="pocc", clients_per_partition=2, verify=True,
        cluster_overrides={
            "repl_batch": ReplicationBatchConfig(
                enabled=True, max_versions=64, max_bytes=1 << 20,
                flush_ms=5.0,
            ),
        },
    )
    client_a = helpers.client_at(built, dc=0, partition=0, index=0)
    client_b = helpers.client_at(built, dc=0, partition=0, index=1)
    key_a = helpers.key_on_partition(built, 0, rank=0)
    key_b = helpers.key_on_partition(built, 0, rank=1)
    done = []
    # Two sessions put into the same partition server at the same
    # instant: both versions land in the buffer inside one flush window.
    client_a.put(key_a, ("c", 1), done.append)
    client_b.put(key_b, ("c", 2), done.append)
    helpers.settle(built, 0.5)
    assert len(done) == 2
    batches = built.network.stats.inter_dc_by_type.get("ReplicateBatch", 0)
    assert batches >= 1, "the two puts should have shared one flush"
