"""Tests for plain-text report rendering."""

import math

from repro.metrics.report import (
    format_si,
    render_table,
    series_summary,
    sparkline,
)


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert len(line) == 8
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_flat_series():
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_sparkline_empty_and_nan():
    assert sparkline([]) == ""
    assert sparkline([float("nan")]) == " "
    line = sparkline([1.0, float("nan"), 2.0])
    assert line[1] == " "


def test_sparkline_monotone_series_is_nondecreasing():
    line = sparkline([1, 2, 4, 8, 16])
    levels = ["▁▂▃▄▅▆▇█".index(c) for c in line]
    assert levels == sorted(levels)


def test_format_si_large():
    assert format_si(12_300) == "12.3k"
    assert format_si(4_200_000) == "4.2M"
    assert format_si(9_990_000_000) == "9.99G"


def test_format_si_small():
    assert format_si(0.0042) == "4.2m"
    assert format_si(0.0000042) == "4.2µ"
    assert format_si(4.2e-9) == "4.2n"
    assert format_si(0) == "0"


def test_format_si_unit_range():
    assert format_si(3.5) == "3.5"
    assert format_si(-1500) == "-1.5k"


def test_render_table_alignment():
    table = render_table(
        ["name", "value"],
        [["alpha", 1234.0], ["b", 0.001]],
    )
    lines = table.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert "1.23k" in table
    assert "1m" in table
    assert lines[0].startswith("name")


def test_render_table_widens_for_long_cells():
    table = render_table(["h"], [["a-very-long-cell-value"]])
    assert "a-very-long-cell-value" in table


def test_series_summary():
    text = series_summary("latency", [1.0, 2.0, 3.0])
    assert text.startswith("latency:")
    assert "min=1" in text and "max=3" in text
    assert series_summary("x", []) == "x: (no data)"
    assert not math.isnan(len(text))
