"""Causal-safe elastic membership: view adoption and key handoff.

One :class:`MembershipManager` is composed into every
:class:`~repro.protocols.base.CausalServer` whose config enables
membership (``config.membership.enabled``); with it disabled the server
holds ``None`` and every hot path pays exactly one attribute check.
The manager owns:

* the server's **active view** (an epoch-numbered
  :class:`~repro.cluster.ring.ClusterView`) and the **pending view** a
  reshard driver proposed;
* the **handoff state machine** — on ``MigrateStart`` the server seals
  (parks client ops for) the keys whose owner changes, streams each
  sealed key's full version chain (values + causal metadata) to the new
  owner in its own DC in ``MigrateChunk`` frames, and reports
  ``MigrateDone`` once every chunk is acked-durable.  The new owner
  persists every chunk before acking — on the live backend the WAL
  group commit *holds the ack frame* until the fsync completes, the
  same persist-before-ack contract client writes ride on — so a joiner
  SIGKILL mid-migration recovers its chunks from the WAL and the retry
  dedupes by version identity;
* **commit**: the driver's ``ViewCommit`` (only ever sent after every
  donor finished and a drain window passed) is WAL-logged, adopted,
  no-longer-owned chains dropped, and parked ops answered with
  ``NotOwner`` so clients re-place them against the new view;
* **gossip**: a periodic ``ViewGossip`` lets a server that missed a
  commit (crashed bystander) adopt the current epoch within one
  interval of any up-to-date peer's tick;
* **straggler forwarding**: replicated versions for keys this partition
  no longer owns (writes in flight across the cutover, or created
  before a remote DC processed the commit) are handed to the local new
  owner, so no acknowledged write is stranded by the ownership flip.

Version-vector discipline during handoff: the new owner merges only the
donor's *own-DC* entry (``vv[m]``), and only on the final chunk.  The
remote entries must stay untouched — each partition's coverage of a
remote DC is vouched for exclusively by its own direct replication
streams, and merging a donor's remote watermark would claim writes
still in flight on the new owner's channels.  Forwarded stragglers
likewise install without advancing any entry.

Every decision is a pure function of ``(view, pending, store)`` — the
manager runs unmodified on the deterministic sim backend and the live
asyncio backend.  See docs/membership.md for the protocol walkthrough
and the crash matrix.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.cluster.ring import ClusterView, initial_view
from repro.common.types import Address
from repro.protocols import messages as m
from repro.storage.version import Version

#: ``MigrateChunk.seq`` of a *forwarded* straggler (not part of a
#: stream): installed by the receiver, never acked.
FORWARD_SEQ = -1


class MembershipManager:
    """View, seal, stream and commit state for one partition server."""

    def __init__(self, server, view: ClusterView | None = None):
        self.server = server
        config = server.config.membership
        self.config = config
        if view is None:
            view = initial_view(server.topology.num_partitions,
                                config.initial_members, config.vnodes)
        self.view = view
        #: Proposed next view (set by ViewPropose, cleared on commit).
        self.pending: ClusterView | None = None
        #: Keys parked during handoff (owner changes at the pending
        #: epoch); None = not sealed.
        self._sealed: set[str] | None = None
        self._parked: list[Any] = []
        #: Outgoing streams: target address -> set of unacked chunk seqs.
        self._unacked: dict[Address, set[int]] = {}
        self._streams_open = 0
        #: Monotone across retries so acks from an abandoned attempt can
        #: never complete a newer one.
        self._next_seq = 0
        self._migrating_epoch = 0
        self._controller: Address | None = None
        #: Set once this server's handoff for the pending epoch finished
        #: (idempotent MigrateDone on driver retries): (keys, bytes).
        self._done_stats: tuple[int, int] | None = None
        self._stream_totals = (0, 0)
        # Staggered gossip so a whole DC does not tick in one instant.
        stagger = 1.0 + 0.01 * (server.m * server.topology.num_partitions
                                + server.n)
        server.rt.schedule(config.gossip_interval_s * stagger,
                           self._gossip_tick)

    # ------------------------------------------------------------------
    # Inbound routing (called from CausalServer.dispatch)
    # ------------------------------------------------------------------
    def intercept(self, msg: Any) -> bool:
        """Handle membership traffic and gate client ops; True = consumed."""
        if isinstance(msg, (m.GetReq, m.PutReq, m.CopsPutReq)):
            return self._gate_client_op(msg)
        if isinstance(msg, m.SliceReq):
            return self._gate_slice(msg)
        if isinstance(msg, m.ViewPropose):
            self._on_propose(msg)
        elif isinstance(msg, m.MigrateStart):
            self._on_migrate_start(msg)
        elif isinstance(msg, m.MigrateChunk):
            self._on_chunk(msg)
        elif isinstance(msg, m.MigrateAck):
            self._on_ack(msg)
        elif isinstance(msg, m.ViewCommit):
            self._on_commit(msg)
        elif isinstance(msg, m.ViewGossip):
            self._on_gossip(msg)
        else:
            return False
        return True

    # ------------------------------------------------------------------
    # Client-op gate: park leaving keys, redirect unowned ones
    # ------------------------------------------------------------------
    def _leaving(self, key: str) -> bool:
        """Mid-handoff, is ``key`` on its way out of this partition?

        The seal-time snapshot (``_sealed``) only names keys that had
        chains when the stream was cut; a key whose *first* version
        lands mid-migration changes owner just the same, and serving it
        here would create state the commit purge silently drops — acked
        to the client, gone from the running cluster.  So the test is
        ownership under the pending ring, not snapshot membership.
        """
        if self._sealed is None:
            return False
        if key in self._sealed:
            return True
        return (self.pending is not None
                and self.view.owner_of(key) == self.server.n
                and self.pending.owner_of(key) != self.server.n)

    def _gate_client_op(self, msg: Any) -> bool:
        key = msg.key
        if self._leaving(key):
            self._parked.append(msg)
            return True
        if self.view.owner_of(key) == self.server.n:
            return False
        self._redirect(msg.client, msg.op_id, key)
        return True

    def _gate_slice(self, msg: m.SliceReq) -> bool:
        server = self.server
        if self._sealed is not None and any(self._leaving(k)
                                            for k in msg.keys):
            self._parked.append(msg)
            return True
        if all(self.view.owner_of(k) == server.n for k in msg.keys):
            return False
        # The coordinator grouped this slice under an older view; the
        # aborted response makes it regroup the whole transaction (see
        # CausalServer.handle_slice_resp) — a partial answer would break
        # its awaiting count.
        server.send_slice_resp(
            msg, m.SliceResp(versions=[], tx_id=msg.tx_id, aborted=True))
        return True

    def _redirect(self, client: Address, op_id: int, key: str) -> None:
        server = self.server
        server.not_owner_redirects += 1
        epoch, members, vnodes = self.view.to_wire()
        server.send(client, m.NotOwner(op_id=op_id, key=key, epoch=epoch,
                                       members=members, vnodes=vnodes))

    # ------------------------------------------------------------------
    # Replication funnel: keep, keep-and-copy, or forward
    # ------------------------------------------------------------------
    def route_replicated(self, version: Version) -> bool:
        """Route one replicated version; True = base installs it here.

        Three cases: owned keys install normally; keys *leaving* at the
        pending epoch install *and* forward (the donor's cut chunks
        pre-date this version, and the donor keeps its copy in case a
        crash forces the driver to re-run the handoff); keys already
        handed off (stragglers from a DC that had not processed the
        commit when it sent) only forward — this partition purged the
        chain and must not resurrect it.
        """
        key = version.key
        if self._leaving(key):
            if self.pending is not None:
                self._forward(self.pending.owner_of(key), version)
            return True
        if self.view.owner_of(key) == self.server.n:
            return True
        self._forward(self.view.owner_of(key), version)
        return False

    def _forward(self, partition: int, version: Version) -> None:
        """Hand a straggler to the local new owner, chunk-framed so the
        receiver installs it without advancing any version-vector entry
        (its own direct stream from the source DC is the only thing
        allowed to vouch for remote coverage)."""
        server = self.server
        if partition == server.n:
            return
        server.send(server.topology.server(server.m, partition),
                    m.MigrateChunk(
                        epoch=self.view.epoch, src_dc=server.m,
                        src_partition=server.n, seq=FORWARD_SEQ,
                        versions=[version], vv=[], last=False,
                    ))

    # ------------------------------------------------------------------
    # Phase 1: propose
    # ------------------------------------------------------------------
    def _on_propose(self, msg: m.ViewPropose) -> None:
        server = self.server
        if msg.epoch > self.view.epoch:
            self.pending = ClusterView.from_wire(msg.epoch, msg.members,
                                                 msg.vnodes)
        self._controller = msg.reply_to
        server.send(msg.reply_to, m.ViewAck(
            epoch=msg.epoch, phase="prepare", dc=server.m,
            partition=server.n))

    # ------------------------------------------------------------------
    # Phase 2: seal + stream (donor side)
    # ------------------------------------------------------------------
    def _on_migrate_start(self, msg: m.MigrateStart) -> None:
        server = self.server
        if server._catching_up is not None:
            # Mid-recovery the store is still filling; streaming now
            # would hand off a partial past.  Replays after catch-up.
            server._parked_during_catchup.append(msg)
            return
        self._controller = msg.reply_to
        if msg.epoch <= self.view.epoch:
            # Already committed here (driver retry raced our earlier ack).
            self._send_done(msg.epoch, 0, 0)
            return
        if self.pending is None or self.pending.epoch != msg.epoch:
            # The propose this start belongs to was lost to a crash; the
            # driver re-sends propose then start in order on FIFO
            # channels, so the retry will arrive well-formed.
            return
        if self._done_stats is not None:
            keys, size = self._done_stats
            self._send_done(msg.epoch, keys, size)
            return
        pending = self.pending
        moving = sorted(
            key for key in server.store.keys()
            if pending.owner_of(key) != server.n
        )
        self._sealed = set(moving)
        self._unacked.clear()
        self._streams_open = 0
        self._migrating_epoch = msg.epoch
        if not moving:
            self._done_stats = (0, 0)
            self._send_done(msg.epoch, 0, 0)
            return
        by_target: dict[int, list[Version]] = {}
        for key in moving:
            chain = server.store.chain(key)
            if chain is None:
                continue
            # Oldest-first so the receiver's chains grow in insert order.
            by_target.setdefault(pending.owner_of(key),
                                 []).extend(reversed(list(chain)))
        total_bytes = 0
        chunk_size = self.config.handoff_chunk_versions
        for partition, versions in sorted(by_target.items()):
            target = server.topology.server(server.m, partition)
            unacked = self._unacked.setdefault(target, set())
            self._streams_open += 1
            for start in range(0, len(versions), chunk_size):
                chunk = versions[start:start + chunk_size]
                last = start + chunk_size >= len(versions)
                self._next_seq += 1
                unacked.add(self._next_seq)
                frame = m.MigrateChunk(
                    epoch=msg.epoch, src_dc=server.m,
                    src_partition=server.n, seq=self._next_seq,
                    versions=chunk, vv=list(server.vv), last=last,
                )
                total_bytes += frame.size_bytes()
                server.send(target, frame)
        self._stream_totals = (len(moving), total_bytes)
        server.keys_migrated += len(moving)
        server.migration_bytes += total_bytes

    def _on_chunk(self, msg: m.MigrateChunk) -> None:
        server = self.server
        store = server.store
        for version in msg.versions:
            if not store.has_version(version.key, version.sr, version.ut):
                store.insert(version)
                server.rt.persist(version)
        if msg.seq == FORWARD_SEQ:
            return
        if msg.last and msg.vv:
            # Adopt only the donor's own-DC watermark: its local writes
            # were either already replicated to us through its channel
            # or arrived in these chunks — never in flight elsewhere.
            # Remote entries stay untouched (see module docstring).  The
            # clock floor keeps our next local write stamped strictly
            # above every migrated own-DC version.
            own = msg.vv[server.m]
            if own > server.vv[server.m]:
                server.vv[server.m] = own
            server._advance_clock_past(own)
            server.waiters.notify()
        # The persist calls above joined this tick's group-commit batch;
        # the live runtime holds this ack frame until the batch fsync
        # completes — acked means durable (sim persists are no-ops and
        # the same code path costs nothing).
        server.send(
            server.topology.server(msg.src_dc, msg.src_partition),
            m.MigrateAck(epoch=msg.epoch, partition=server.n, seq=msg.seq))

    def _on_ack(self, msg: m.MigrateAck) -> None:
        server = self.server
        acker = server.topology.server(server.m, msg.partition)
        unacked = self._unacked.get(acker)
        if unacked is None or msg.seq not in unacked:
            return  # stale ack from an abandoned attempt
        unacked.discard(msg.seq)
        if unacked:
            return
        del self._unacked[acker]
        self._streams_open -= 1
        if self._streams_open == 0 and self._done_stats is None:
            self._done_stats = self._stream_totals
            keys, size = self._done_stats
            self._send_done(self._migrating_epoch, keys, size)

    def _send_done(self, epoch: int, keys: int, size: int) -> None:
        if self._controller is not None:
            server = self.server
            server.send(self._controller, m.MigrateDone(
                epoch=epoch, dc=server.m, partition=server.n,
                keys_moved=keys, bytes_moved=size))

    # ------------------------------------------------------------------
    # Phase 3: commit (and gossip-driven adoption)
    # ------------------------------------------------------------------
    def _on_commit(self, msg: m.ViewCommit) -> None:
        server = self.server
        if msg.epoch > self.view.epoch:
            self._adopt(ClusterView.from_wire(msg.epoch, msg.members,
                                              msg.vnodes))
        if self._controller is not None:
            server.send(self._controller, m.ViewAck(
                epoch=msg.epoch, phase="commit", dc=server.m,
                partition=server.n))

    def _adopt(self, view: ClusterView) -> None:
        """Flip to a committed view: log, purge, answer parked ops."""
        server = self.server
        self.view = view
        persist_view = getattr(server.rt, "persist_view", None)
        if persist_view is not None:
            persist_view(*view.to_wire())
        n = server.n
        owner_of = view.owner_of
        server.store.purge(lambda v: owner_of(v.key) != n)
        self.pending = None
        self._sealed = None
        self._done_stats = None
        self._unacked.clear()
        self._streams_open = 0
        parked, self._parked = self._parked, []
        for msg in parked:
            # Re-gate under the new view: ops for keys we kept serve
            # normally; ops for keys that moved get the NotOwner
            # redirect carrying this view.
            server.on_message(msg)
        server.waiters.notify()

    def adopt_recovered(self, epoch: int, members: Iterable[int],
                        vnodes: int) -> None:
        """Boot-time restore of the newest WAL-logged view.  The commit
        that logged it only ever followed a finished handoff, so purging
        unowned chains cannot drop the last copy of anything."""
        if epoch > self.view.epoch:
            self._adopt(ClusterView.from_wire(epoch, tuple(members),
                                              vnodes))

    # ------------------------------------------------------------------
    # Gossip (anti-entropy for views)
    # ------------------------------------------------------------------
    def _gossip_tick(self) -> None:
        server = self.server
        epoch, members, vnodes = self.view.to_wire()
        gossip = m.ViewGossip(epoch=epoch, members=members, vnodes=vnodes)
        targets = [addr for addr in server.topology.dc_servers(server.m)
                   if addr != server.address]
        targets.extend(server._peer_replicas)
        server.send_fanout(targets, gossip)
        server.rt.schedule(self.config.gossip_interval_s, self._gossip_tick)

    def _on_gossip(self, msg: m.ViewGossip) -> None:
        if msg.epoch > self.view.epoch:
            self._adopt(ClusterView.from_wire(msg.epoch, msg.members,
                                              msg.vnodes))
        # Lower-epoch gossip needs no reply: every server gossips every
        # interval, so a stale peer hears a higher epoch from our own
        # next tick (ViewGossip carries no reply address by design).

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def quorum_partitions(self) -> set[int]:
        """Partitions whose reports complete a GC/stabilization round:
        the view members plus the aggregator's own partition (0).  A
        partition resharded out of the view may be dead; waiting on its
        report would stall every round forever."""
        return set(self.view.members) | {0}
