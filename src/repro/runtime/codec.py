"""The wire codec: length-prefixed frames for every protocol message.

Frame layout: a 4-byte big-endian payload length, then the payload.  The
payload is msgpack when the ``msgpack`` package is importable and compact
JSON otherwise — both encode the same tagged tree, so the choice only
affects bytes on the wire, never round-trip fidelity.  Every endpoint of
one deployment must use the same serializer (they share this module, so
they do).

Encoding is driven by the dataclass registry built from
:mod:`repro.protocols.messages`: a message becomes
``["@m", type_name, [field values…]]`` with field values encoded
recursively.  Python containers and the protocol's non-dataclass payload
types carry tags so decoding restores the *exact* original shape —
tuples stay tuples (dataclass equality depends on it), versions come back
as :class:`repro.storage.version.Version` or the COPS* subclass:

=========  ====================================================
tag        payload
=========  ====================================================
``@m``     message dataclass: name + field list
``@t``     tuple (elements encoded recursively)
``@l``     escape: a *plain list* whose first element is a
           string starting with ``@`` (kept unambiguous)
``@a``     :class:`repro.common.types.Address`
``@v``     :class:`repro.storage.version.Version`
``@cv``    :class:`repro.protocols.cops.CopsVersion`
=========  ====================================================

Scalars (``None``, ``bool``, ``int``, ``float``, ``str``) pass through
untouched; plain lists stay plain lists (escaped with ``@l`` only when
their head collides with the tag space).  Values stored by clients must
be built from these shapes (the workload generators' values are).

``size_bytes()`` note: messages model their size as a *compact binary*
encoding of the paper's setup (8-byte keys/values/timestamps).  The live
codec's frames are larger (self-describing), so ``encoded_size()`` is the
transport truth while ``size_bytes()`` remains the metadata-overhead model
— the round-trip property test pins that ``size_bytes()`` survives a
round trip unchanged and the frame length matches what was written.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any

from repro.common.errors import ReproError
from repro.common.types import Address, NodeKind
from repro.protocols import messages
from repro.storage.version import Version

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack  # type: ignore

    def _pack(tree: Any) -> bytes:
        return msgpack.packb(tree, use_bin_type=True)

    def _unpack(payload: bytes) -> Any:
        return msgpack.unpackb(payload, raw=False)

    SERIALIZER = "msgpack"
except ImportError:
    def _pack(tree: Any) -> bytes:
        return json.dumps(tree, separators=(",", ":"),
                          ensure_ascii=False).encode("utf-8")

    def _unpack(payload: bytes) -> Any:
        return json.loads(payload.decode("utf-8"))

    SERIALIZER = "json"

_LEN = struct.Struct(">I")

#: Hard cap on one frame; anything larger is a corrupt length prefix.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def _message_dataclasses() -> dict[str, type]:
    """Every message dataclass defined in :mod:`repro.protocols.messages`."""
    found: dict[str, type] = {}
    for name in dir(messages):
        obj = getattr(messages, name)
        if (isinstance(obj, type) and dataclasses.is_dataclass(obj)
                and obj.__module__ == messages.__name__):
            found[name] = obj
    return found


#: name -> dataclass, the codec's message registry.
MESSAGE_TYPES: dict[str, type] = _message_dataclasses()

_FIELDS: dict[str, tuple[str, ...]] = {
    name: tuple(f.name for f in dataclasses.fields(cls))
    for name, cls in MESSAGE_TYPES.items()
}


class CodecError(ReproError):
    """Raised on malformed frames or unregistered payload types."""


# ----------------------------------------------------------------------
# Tree encoding
# ----------------------------------------------------------------------
def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        encoded = [_encode_value(item) for item in value]
        if encoded and isinstance(encoded[0], str) \
                and encoded[0].startswith("@"):
            # A client value like ["@t", ...] would otherwise be
            # indistinguishable from a tagged node: escape it.
            return ["@l", *encoded]
        return encoded
    if isinstance(value, tuple):
        return ["@t", *(_encode_value(item) for item in value)]
    if isinstance(value, Address):
        return ["@a", value.dc, value.partition, value.kind.value,
                value.index]
    if isinstance(value, Version):
        deps = getattr(value, "deps", None)
        if deps is not None:  # CopsVersion: dependency list + visibility
            return ["@cv", value.key, _encode_value(value.value), value.sr,
                    value.ut, len(value.dv),
                    [_encode_value(dep) for dep in deps],
                    bool(value.visible)]
        return ["@v", value.key, _encode_value(value.value), value.sr,
                value.ut, [int(x) for x in value.dv],
                bool(value.optimistic)]
    cls_name = type(value).__name__
    fields = _FIELDS.get(cls_name)
    if fields is not None and isinstance(value, MESSAGE_TYPES[cls_name]):
        return ["@m", cls_name,
                [_encode_value(getattr(value, f)) for f in fields]]
    raise CodecError(f"cannot encode {type(value).__name__}: {value!r}")


def _decode_value(tree: Any) -> Any:
    if tree is None or isinstance(tree, (bool, int, float, str)):
        return tree
    if not isinstance(tree, list):
        raise CodecError(f"malformed wire tree: {tree!r}")
    if not tree or not isinstance(tree[0], str) or not tree[0].startswith("@"):
        return [_decode_value(item) for item in tree]
    tag = tree[0]
    if tag == "@l":  # escaped plain list whose head looked like a tag
        return [_decode_value(item) for item in tree[1:]]
    if tag == "@t":
        return tuple(_decode_value(item) for item in tree[1:])
    if tag == "@a":
        _, dc, partition, kind, index = tree
        return Address(dc=dc, partition=partition, kind=NodeKind(kind),
                       index=index)
    if tag == "@v":
        _, key, value, sr, ut, dv, optimistic = tree
        return Version(key=key, value=_decode_value(value), sr=sr, ut=ut,
                       dv=tuple(dv), optimistic=optimistic)
    if tag == "@cv":
        from repro.protocols.cops import CopsVersion
        _, key, value, sr, ut, num_dcs, deps, visible = tree
        return CopsVersion(key=key, value=_decode_value(value), sr=sr,
                           ut=ut, num_dcs=num_dcs,
                           deps=[_decode_value(dep) for dep in deps],
                           visible=visible)
    if tag == "@m":
        _, name, values = tree
        cls = MESSAGE_TYPES.get(name)
        if cls is None:
            raise CodecError(f"unknown message type on the wire: {name!r}")
        fields = _FIELDS[name]
        if len(values) != len(fields):
            raise CodecError(
                f"{name}: expected {len(fields)} fields, got {len(values)}"
            )
        return cls(**{f: _decode_value(v) for f, v in zip(fields, values)})
    raise CodecError(f"unknown wire tag {tag!r}")


# ----------------------------------------------------------------------
# Payload API (no length prefix)
# ----------------------------------------------------------------------
def dumps(msg: Any) -> bytes:
    """Serialize one message to its payload bytes."""
    return _pack(_encode_value(msg))


def loads(payload: bytes) -> Any:
    """The inverse of :func:`dumps`."""
    try:
        tree = _unpack(payload)
    except Exception as exc:
        # The serializer's own failure modes (msgpack unpack errors,
        # json decode errors) are stream corruption to every caller.
        raise CodecError(f"undecodable payload: {exc}") from exc
    return _decode_value(tree)


# ----------------------------------------------------------------------
# Frame API (length-prefixed, what the TCP transport ships)
# ----------------------------------------------------------------------
def encode_frame(msg: Any) -> bytes:
    """One wire frame: 4-byte big-endian payload length + payload."""
    payload = dumps(msg)
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(payload)} bytes exceeds the cap")
    return _LEN.pack(len(payload)) + payload


def encoded_size(msg: Any) -> int:
    """Total frame bytes :func:`encode_frame` would produce."""
    return _LEN.size + len(dumps(msg))


class FrameDecoder:
    """Incremental frame parser for a TCP byte stream or a WAL file.

    Two failure shapes are kept apart, because their meanings differ:

    * an **incomplete trailing frame** — the stream simply ended (or has
      not yet delivered) mid-frame.  Not an error: :meth:`feed` returns
      the complete messages, :attr:`pending_bytes` is positive, and
      :attr:`consumed_bytes` is the *clean boundary*: the stream offset
      just past the last fully decoded frame.  WAL recovery truncates a
      torn tail exactly there; the live transport counts an
      abruptly-closed connection's partial frame instead of mistaking it
      for corruption.
    * **corruption** — a length prefix beyond :data:`MAX_FRAME_BYTES` or
      a *complete* frame whose payload does not decode.  :meth:`feed`
      raises :class:`CodecError` and leaves :attr:`consumed_bytes` at the
      boundary *before* the offending frame, so the caller can report
      where the stream went bad.
    """

    __slots__ = ("_buffer", "_consumed")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._consumed = 0

    def feed(self, data: bytes) -> list[Any]:
        """Absorb ``data``; return every message completed by it.

        Eager on purpose: the bytes are buffered and parsed before this
        returns, so a caller that drops the result has still advanced the
        stream (a lazy generator would silently skip the chunk unless
        iterated, corrupting the framing of everything after it).
        """
        self._buffer.extend(data)
        buffer = self._buffer
        out: list[Any] = []
        while True:
            if len(buffer) < _LEN.size:
                return out
            (length,) = _LEN.unpack_from(buffer)
            if length > MAX_FRAME_BYTES:
                raise CodecError(
                    f"frame length {length} exceeds the cap (corrupt stream?)"
                )
            end = _LEN.size + length
            if len(buffer) < end:
                return out
            payload = bytes(buffer[_LEN.size:end])
            # Decode before advancing: a corrupt complete frame must not
            # move the clean boundary past its own start.
            msg = loads(payload)
            del buffer[:end]
            self._consumed += end
            out.append(msg)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    @property
    def consumed_bytes(self) -> int:
        """Stream offset just past the last fully decoded frame.

        ``consumed_bytes + pending_bytes`` equals the total bytes fed.
        """
        return self._consumed
