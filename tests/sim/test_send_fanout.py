"""Byte accounting must be unchanged by the fan-out size cache.

``SimNode.send_fanout`` computes ``size_bytes()`` once per replication
fan-out instead of once per destination DC.  These tests pin the contract:
per-destination accounting (totals, per-DC-pair bytes, message counts) is
exactly what N individual sends would have produced, and the cached size
is what ``size_bytes()`` reports.
"""

import random

from repro.common.config import (
    ExperimentConfig,
    LatencyConfig,
    WorkloadConfig,
    smoke_scale_cluster,
)
from repro.common.types import Address
from repro.harness.experiment import run_experiment
from repro.protocols import messages as m
from repro.sim.engine import Simulator
from repro.sim.latency import GeoLatencyModel
from repro.sim.network import Network
from repro.storage.version import Version


class _Sink:
    __slots__ = ("address", "received")

    def __init__(self, address):
        self.address = address
        self.received = []

    def on_message(self, msg) -> None:
        self.received.append(msg)


class _CountingMsg:
    """Counts how often its size is computed."""

    calls = 0

    def size_bytes(self) -> int:
        _CountingMsg.calls += 1
        return 128


def _network():
    sim = Simulator()
    network = Network(sim, GeoLatencyModel(LatencyConfig(),
                                           random.Random(11)))
    sinks = [_Sink(Address(dc=dc, partition=0)) for dc in range(3)]
    for sink in sinks:
        network.register(sink)
    return sim, network, sinks


def test_cached_size_matches_per_destination_sends():
    version = Version(key="k", value=1, sr=0, ut=10,
                      dv=(10, 5, 3))
    msg = m.Replicate(version=version)
    size = msg.size_bytes()

    sim_a, net_a, sinks_a = _network()
    src = sinks_a[0].address
    for sink in sinks_a[1:]:
        net_a.send(src, sink.address, msg)  # legacy: size per destination

    sim_b, net_b, sinks_b = _network()
    for sink in sinks_b[1:]:
        net_b.send(sinks_b[0].address, sink.address, msg, size=size)

    assert net_a.stats.bytes_sent == net_b.stats.bytes_sent == 2 * size
    assert net_a.stats.messages_sent == net_b.stats.messages_sent == 2
    assert net_a.stats.per_dc_pair_bytes == net_b.stats.per_dc_pair_bytes
    assert net_a.stats.inter_dc_bytes() == net_b.stats.inter_dc_bytes()


def test_fanout_computes_size_exactly_once():
    sim, network, sinks = _network()
    msg = _CountingMsg()
    _CountingMsg.calls = 0
    size = network.message_size(msg)
    assert _CountingMsg.calls == 1
    for sink in sinks[1:]:
        network.send(sinks[0].address, sink.address, msg, size=size)
    assert _CountingMsg.calls == 1  # no recomputation per destination
    assert network.stats.bytes_sent == 2 * 128
    sim.run()
    assert all(len(s.received) == 1 for s in sinks[1:])


def test_experiment_byte_accounting_unchanged_by_fanout_cache():
    """End-to-end pin: bytes/op of a deterministic run — which exercises
    the replicate/heartbeat/stabilization fan-out paths — must be a
    plausible, internally consistent accounting (per-pair sums equal the
    total) and stable run-to-run."""
    config = ExperimentConfig(
        cluster=smoke_scale_cluster("cure"),
        workload=WorkloadConfig(kind="get_put", gets_per_put=2,
                                clients_per_partition=2,
                                think_time_s=0.004),
        warmup_s=0.2,
        duration_s=0.6,
        seed=31,
    )
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.network_bytes == second.network_bytes
    assert first.network_messages == second.network_messages
    assert first.inter_dc_bytes == second.inter_dc_bytes
    assert 0 < first.inter_dc_bytes <= first.network_bytes
