"""The partition-local multiversion store: one version chain per key."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from typing import Callable

from repro.common.types import Micros, ReplicaId
from repro.storage.chain import VersionChain
from repro.storage.gc import GcStats, collect_chain, collect_chain_by
from repro.storage.version import Version


class PartitionStore:
    """All versions held by one server for the keys of its partition."""

    __slots__ = ("_chains", "gc_stats", "versions_inserted")

    def __init__(self) -> None:
        self._chains: dict[Any, VersionChain] = {}
        self.gc_stats = GcStats()
        self.versions_inserted = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, version: Version) -> None:
        """Insert a version into its key's chain (creating the chain)."""
        chain = self._chains.get(version.key)
        if chain is None:
            chain = VersionChain()
            self._chains[version.key] = chain
        chain.insert(version)
        self.versions_inserted += 1

    def preload(
        self,
        keys: Iterable[Any],
        num_dcs: int,
        initial_value: Any = 0,
        source_replica: ReplicaId = 0,
    ) -> None:
        """Install an identical initial version of every key at time 0.

        The paper preloads one million key-value pairs per partition; the
        initial versions are identical at every DC (ut=0, all-zero
        dependency cut) and therefore trivially stable everywhere.
        """
        dv = (0,) * num_dcs
        for key in keys:
            self.insert(
                Version(key=key, value=initial_value, sr=source_replica,
                        ut=0, dv=dv)
            )
        # Preloading is not a workload write.
        self.versions_inserted = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def purge(self, doomed: Callable[[Version], bool]) -> list[Version]:
        """Remove every version matching ``doomed`` from every chain.

        Unlike garbage collection this may remove chain *heads* — it
        implements recovery-time discarding (Section III-B's lost-update
        mechanism), not retention.  Returns the removed versions so the
        caller can report what was lost.
        """
        removed: list[Version] = []
        emptied: list[Any] = []
        for key, chain in self._chains.items():
            keep: list[Version] = []
            for version in chain:  # freshest-first, order preserved
                if doomed(version):
                    removed.append(version)
                else:
                    keep.append(version)
            if len(keep) != len(chain):
                chain.truncate_to(keep)
                if not keep:
                    emptied.append(key)
        for key in emptied:
            # A fully purged chain leaves the store, not an empty shell:
            # readers treat a missing chain as "no version" (nil reply)
            # but would trip over a present-yet-empty one, and a view
            # change purges whole chains precisely to hand the memory
            # back.
            del self._chains[key]
        return removed

    def chain(self, key: Any) -> VersionChain | None:
        return self._chains.get(key)

    def find_version(self, key: Any, sr: ReplicaId, ut: Micros) -> Version | None:
        """The locally held version with this exact identity, if any."""
        chain = self._chains.get(key)
        return chain.find(sr, ut) if chain is not None else None

    def has_version(self, key: Any, sr: ReplicaId, ut: Micros) -> bool:
        """Whether the version with this exact identity is held locally."""
        return self.find_version(key, sr, ut) is not None

    def all_versions(self) -> Iterator[Version]:
        """Every version of every chain (snapshot scans); no order
        guarantee across keys, freshest-first within one key."""
        for chain in self._chains.values():
            yield from chain

    def freshest(self, key: Any) -> Version | None:
        """Head of the chain (the optimistic read)."""
        chain = self._chains.get(key)
        return chain.head() if chain is not None else None

    def __contains__(self, key: Any) -> bool:
        return key in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    def keys(self) -> Iterator[Any]:
        return iter(self._chains)

    def total_versions(self) -> int:
        return sum(len(chain) for chain in self._chains.values())

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def collect(self, gv: Sequence[Micros]) -> int:
        """Run one GC round with garbage vector ``gv`` over all chains."""
        removed = 0
        for chain in self._chains.values():
            if len(chain) > 1:
                removed += collect_chain(chain, gv)
                self.gc_stats.chains_scanned += 1
        self.gc_stats.rounds += 1
        self.gc_stats.versions_removed += removed
        self.gc_stats.last_gv = list(gv)
        return removed

    def collect_by(
        self, covered: Callable[[Version], bool], horizon: Sequence[Micros]
    ) -> int:
        """GC round with a custom coverage predicate (scalar-clock
        protocols); ``horizon`` is recorded in the stats for inspection."""
        removed = 0
        for chain in self._chains.values():
            if len(chain) > 1:
                removed += collect_chain_by(chain, covered)
                self.gc_stats.chains_scanned += 1
        self.gc_stats.rounds += 1
        self.gc_stats.versions_removed += removed
        self.gc_stats.last_gv = list(horizon)
        return removed
