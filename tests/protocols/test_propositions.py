"""The Appendix propositions, checked directly on driven systems.

The paper's correctness argument rests on two invariants:

* **Proposition 1** — X ≺ Y implies ``Y.DV[X.sr] >= X.ut`` (dependency
  vectors cover causal pasts).  The independent checker validates this
  end-to-end; here we verify its store-level consequence.
* **Proposition 2** — X ≺ Y implies ``X.ut < Y.ut`` (update timestamps
  respect causality).  Its mechanism is Algorithm 2 line 7: a version's
  timestamp strictly dominates every entry of its dependency vector.

These tests drive real workloads, quiesce, then sweep every version in
every store and assert the stamped metadata obeys the invariants.
"""

import pytest

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.harness.builders import build_cluster

VECTOR_PROTOCOLS = ("pocc", "cure", "ha_pocc")


def _quiesced_servers(protocol: str):
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40, protocol=protocol),
        workload=WorkloadConfig(clients_per_partition=3,
                                think_time_s=0.003, gets_per_put=2),
        warmup_s=0.0,
        duration_s=1.5,
        seed=23,
    )
    built = build_cluster(config)
    built.start_drivers()
    built.sim.run(until=1.5)
    built.stop_drivers()
    built.sim.run(until=built.sim.now + 1.0)  # drain replication
    return built


def _all_versions(built):
    for server in built.servers.values():
        for key in server.store.keys():
            for version in server.store.chain(key):
                yield server, version


@pytest.mark.parametrize("protocol", VECTOR_PROTOCOLS)
def test_prop2_timestamp_dominates_dependency_vector(protocol):
    """Algorithm 2 line 7, store-wide: ut > max(DV) for every created
    version (preloaded versions carry ut == 0 and are skipped)."""
    built = _quiesced_servers(protocol)
    checked = 0
    for _, version in _all_versions(built):
        if version.ut == 0:
            continue
        checked += 1
        assert version.ut > max(version.dv), (
            f"{protocol}: version {version!r} violates Proposition 2"
        )
    assert checked > 100  # the sweep actually saw real writes


@pytest.mark.parametrize("protocol", VECTOR_PROTOCOLS)
def test_version_identities_globally_unique(protocol):
    """(key, sr, ut) is a global version id: strict per-node timestamp
    monotonicity makes duplicates impossible."""
    built = _quiesced_servers(protocol)
    per_dc: dict[int, set] = {}
    for server, version in _all_versions(built):
        if version.ut == 0:
            continue
        seen = per_dc.setdefault(server.m, set())
        identity = version.identity()
        assert identity not in seen, f"duplicate {identity} in DC{server.m}"
        seen.add(identity)


@pytest.mark.parametrize("protocol", VECTOR_PROTOCOLS)
def test_prop1_consequence_dv_within_received_horizon(protocol):
    """A version's dependency cut never references updates beyond what
    its *source* DC had received when it was created — so, after full
    drain, every dependency entry is below the final version vectors."""
    built = _quiesced_servers(protocol)
    # After drain, all replicas of a partition converge on their VVs'
    # upper bound; any version's dv must sit inside it.
    for server, version in _all_versions(built):
        if version.ut == 0:
            continue
        for dc, entry in enumerate(version.dv):
            assert entry <= max(
                s.vv[dc] for s in built.servers.values()
            ), f"dv[{dc}] beyond anything ever received"


def test_prop2_holds_under_extreme_clock_skew():
    """Section IV: correctness must not depend on clock precision."""
    from repro.common.config import ClockConfig

    config = ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3, num_partitions=2, keys_per_partition=40,
            protocol="pocc",
            clocks=ClockConfig(max_offset_us=5_000, max_drift_ppm=200.0),
        ),
        workload=WorkloadConfig(clients_per_partition=3,
                                think_time_s=0.003, gets_per_put=2),
        warmup_s=0.0,
        duration_s=1.5,
        seed=31,
        verify=True,
    )
    from repro.harness.experiment import run_experiment

    result = run_experiment(config)
    assert result.verification["violations"] == 0
    assert result.divergences == 0
